// Package match provides the two matching primitives of the
// differencing algorithm: minimum-cost bipartite matching with
// insertion/deletion slack for F nodes (solved with the Hungarian
// algorithm, Section V-C Case 4), and minimum-cost non-crossing
// bipartite matching for the ordered children of L nodes (solved with
// an edit-distance style dynamic program, Section VI).
package match

import "math"

// Inf is the cost used to forbid a pairing.
var Inf = math.Inf(1)

// Result describes a matching between m left items and n right items.
type Result struct {
	// Cost is the total cost: matched pair costs plus deletion costs
	// for unmatched left items plus insertion costs for unmatched
	// right items.
	Cost float64
	// Pairs lists matched (left, right) index pairs.
	Pairs [][2]int
}

// Matched reports, for convenience, whether left index i is matched
// and to which right index.
func (r *Result) Matched(i int) (int, bool) {
	for _, p := range r.Pairs {
		if p[0] == i {
			return p[1], true
		}
	}
	return 0, false
}

// Bipartite finds a minimum-cost matching between m left items and n
// right items where pairing (i, j) costs pair(i, j), leaving left item
// i unmatched costs del(i), and leaving right item j unmatched costs
// ins(j). Every item may be matched at most once. This is the
// bipartite graph of Fig. 9 with the special "−" and "+" nodes.
//
// It reduces to an (m+n) × (m+n) assignment problem: left items and n
// insertion slots on one side, right items and m deletion slots on
// the other; slot-to-slot cells cost zero.
func Bipartite(m, n int, pair func(i, j int) float64, del func(i int) float64, ins func(j int) float64) Result {
	size := m + n
	if size == 0 {
		return Result{}
	}
	cost := make([][]float64, size)
	for i := 0; i < size; i++ {
		cost[i] = make([]float64, size)
		for j := 0; j < size; j++ {
			switch {
			case i < m && j < n:
				cost[i][j] = pair(i, j)
			case i < m && j >= n:
				cost[i][j] = del(i)
			case i >= m && j < n:
				cost[i][j] = ins(j)
			default:
				cost[i][j] = 0
			}
		}
	}
	assign, total := hungarian(cost)
	res := Result{Cost: total}
	for i := 0; i < m; i++ {
		if j := assign[i]; j < n {
			res.Pairs = append(res.Pairs, [2]int{i, j})
		}
	}
	return res
}

// hungarian solves the square assignment problem, returning for each
// row the assigned column and the total cost. It is the O(n^3)
// Jonker-style shortest augmenting path formulation of the Hungarian
// method (Kuhn 1955), operating on potentials u, v.
func hungarian(cost [][]float64) ([]int, float64) {
	n := len(cost)
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j (1-based; 0 = none)
	way := make([]int, n+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = Inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := Inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return assign, total
}

// NonCrossing finds a minimum-cost non-crossing matching between m
// ordered left items and n ordered right items: if (i, j) and (i', j')
// are both matched and i < i', then j < j'. Unmatched items pay del/ins
// as in Bipartite. Solved by the classic O(mn) sequence-alignment
// dynamic program.
func NonCrossing(m, n int, pair func(i, j int) float64, del func(i int) float64, ins func(j int) float64) Result {
	dp := make([][]float64, m+1)
	for i := range dp {
		dp[i] = make([]float64, n+1)
	}
	for i := 1; i <= m; i++ {
		dp[i][0] = dp[i-1][0] + del(i-1)
	}
	for j := 1; j <= n; j++ {
		dp[0][j] = dp[0][j-1] + ins(j-1)
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			best := dp[i-1][j] + del(i-1)
			if c := dp[i][j-1] + ins(j-1); c < best {
				best = c
			}
			if c := dp[i-1][j-1] + pair(i-1, j-1); c < best {
				best = c
			}
			dp[i][j] = best
		}
	}
	res := Result{Cost: dp[m][n]}
	// Backtrack, preferring matches so ties yield maximal pairings.
	const eps = 1e-9
	i, j := m, n
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && dp[i][j] >= dp[i-1][j-1]+pair(i-1, j-1)-eps && dp[i][j] <= dp[i-1][j-1]+pair(i-1, j-1)+eps:
			res.Pairs = append(res.Pairs, [2]int{i - 1, j - 1})
			i, j = i-1, j-1
		case i > 0 && dp[i][j] >= dp[i-1][j]+del(i-1)-eps && dp[i][j] <= dp[i-1][j]+del(i-1)+eps:
			i--
		default:
			j--
		}
	}
	// Reverse into increasing order.
	for a, b := 0, len(res.Pairs)-1; a < b; a, b = a+1, b-1 {
		res.Pairs[a], res.Pairs[b] = res.Pairs[b], res.Pairs[a]
	}
	return res
}
