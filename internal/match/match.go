// Package match provides the two matching primitives of the
// differencing algorithm: minimum-cost bipartite matching with
// insertion/deletion slack for F nodes (solved with the Hungarian
// algorithm, Section V-C Case 4), and minimum-cost non-crossing
// bipartite matching for the ordered children of L nodes (solved with
// an edit-distance style dynamic program, Section VI).
//
// Both primitives exist in two forms. The closure-based package
// functions Bipartite and NonCrossing allocate their result and are
// convenient for one-off calls. The Scratch methods take
// caller-provided flat cost rows and reuse all interior buffers
// (assignment matrix, potentials, DP table, result pairs), so a batch
// of k matchings performs O(1) steady-state allocation; a diff Engine
// owns one Scratch and threads it through every F/L node.
package match

import (
	"math"
	"sync"
)

// Inf is the cost used to forbid a pairing.
var Inf = math.Inf(1)

// Result describes a matching between m left items and n right items.
type Result struct {
	// Cost is the total cost: matched pair costs plus deletion costs
	// for unmatched left items plus insertion costs for unmatched
	// right items.
	Cost float64
	// Pairs lists matched (left, right) index pairs.
	Pairs [][2]int

	// left[i] is the right index matched to left item i, or -1; it
	// makes Matched O(1). Results built by this package always carry
	// it; zero-value Results fall back to scanning Pairs.
	left []int
}

// Matched reports whether left index i is matched and to which right
// index. It is O(1) for Results produced by this package.
func (r *Result) Matched(i int) (int, bool) {
	if r.left != nil {
		if i < 0 || i >= len(r.left) {
			return 0, false
		}
		if j := r.left[i]; j >= 0 {
			return j, true
		}
		return 0, false
	}
	for _, p := range r.Pairs {
		if p[0] == i {
			return p[1], true
		}
	}
	return 0, false
}

// Clone returns a Result whose Pairs and match index are detached from
// any Scratch buffers.
func (r Result) Clone() Result {
	r.Pairs = append([][2]int(nil), r.Pairs...)
	r.left = append([]int(nil), r.left...)
	return r
}

// Scratch holds the reusable working state of both matchers. The
// Result returned by its methods aliases Scratch buffers (Pairs and
// the Matched index): it is valid until the next call on the same
// Scratch, so copy (Clone) anything that must outlive it. A Scratch
// must not be used from several goroutines at once; its zero value is
// ready to use.
type Scratch struct {
	cost   []float64 // (m+n)² assignment matrix, row-major
	u, v   []float64 // Hungarian potentials
	minv   []float64
	p, way []int
	used   []bool
	assign []int

	dp []float64 // non-crossing DP table, (m+1)×(n+1) row-major

	pairs [][2]int
	left  []int

	pairBuf, delBuf, insBuf []float64 // closure-API staging
}

// grow returns a slice of length n, reusing s's backing array when it
// is large enough; contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Bipartite finds a minimum-cost matching between m left items and n
// right items where pairing (i, j) costs pairCost[i*n+j] (row-major),
// leaving left item i unmatched costs del[i], and leaving right item j
// unmatched costs ins[j]. Every item may be matched at most once. This
// is the bipartite graph of Fig. 9 with the special "−" and "+" nodes,
// reduced to an (m+n) × (m+n) assignment problem: left items and n
// insertion slots on one side, right items and m deletion slots on the
// other; slot-to-slot cells cost zero.
func (s *Scratch) Bipartite(m, n int, pairCost, del, ins []float64) Result {
	size := m + n
	s.pairs = s.pairs[:0]
	s.left = grow(s.left, m)
	for i := range s.left {
		s.left[i] = -1
	}
	if size == 0 {
		return Result{}
	}
	s.cost = grow(s.cost, size*size)
	for i := 0; i < size; i++ {
		row := s.cost[i*size : (i+1)*size]
		for j := 0; j < size; j++ {
			switch {
			case i < m && j < n:
				row[j] = pairCost[i*n+j]
			case i < m:
				row[j] = del[i]
			case j < n:
				row[j] = ins[j]
			default:
				row[j] = 0
			}
		}
	}
	total := s.hungarian(size)
	for i := 0; i < m; i++ {
		if j := s.assign[i]; j < n {
			s.pairs = append(s.pairs, [2]int{i, j})
			s.left[i] = j
		}
	}
	return Result{Cost: total, Pairs: s.pairs, left: s.left}
}

// hungarian solves the square assignment problem over s.cost (n×n,
// row-major), filling s.assign with the column assigned to each row
// and returning the total cost. It is the O(n³) Jonker-style shortest
// augmenting path formulation of the Hungarian method (Kuhn 1955),
// operating on potentials u, v.
func (s *Scratch) hungarian(n int) float64 {
	s.u = grow(s.u, n+1)
	s.v = grow(s.v, n+1)
	s.p = grow(s.p, n+1)
	s.way = grow(s.way, n+1)
	s.minv = grow(s.minv, n+1)
	s.used = grow(s.used, n+1)
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j], s.p[j], s.way[j] = 0, 0, 0, 0
	}
	cost := s.cost
	for i := 1; i <= n; i++ {
		s.p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			s.minv[j] = Inf
			s.used[j] = false
		}
		for {
			s.used[j0] = true
			i0 := s.p[j0]
			delta := Inf
			j1 := 0
			base := (i0 - 1) * n
			for j := 1; j <= n; j++ {
				if s.used[j] {
					continue
				}
				cur := cost[base+j-1] - s.u[i0] - s.v[j]
				if cur < s.minv[j] {
					s.minv[j] = cur
					s.way[j] = j0
				}
				if s.minv[j] < delta {
					delta = s.minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if s.used[j] {
					s.u[s.p[j]] += delta
					s.v[j] -= delta
				} else {
					s.minv[j] -= delta
				}
			}
			j0 = j1
			if s.p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := s.way[j0]
			s.p[j0] = s.p[j1]
			j0 = j1
		}
	}
	s.assign = grow(s.assign, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if s.p[j] > 0 {
			s.assign[s.p[j]-1] = j - 1
			total += cost[(s.p[j]-1)*n+j-1]
		}
	}
	return total
}

// NonCrossing finds a minimum-cost non-crossing matching between m
// ordered left items and n ordered right items: if (i, j) and (i', j')
// are both matched and i < i', then j < j'. Costs are given as in
// (*Scratch).Bipartite. Solved by the classic O(mn) sequence-alignment
// dynamic program over a flat DP table.
func (s *Scratch) NonCrossing(m, n int, pairCost, del, ins []float64) Result {
	stride := n + 1
	s.dp = grow(s.dp, (m+1)*stride)
	dp := s.dp
	dp[0] = 0
	for i := 1; i <= m; i++ {
		dp[i*stride] = dp[(i-1)*stride] + del[i-1]
	}
	for j := 1; j <= n; j++ {
		dp[j] = dp[j-1] + ins[j-1]
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			best := dp[(i-1)*stride+j] + del[i-1]
			if c := dp[i*stride+j-1] + ins[j-1]; c < best {
				best = c
			}
			if c := dp[(i-1)*stride+j-1] + pairCost[(i-1)*n+j-1]; c < best {
				best = c
			}
			dp[i*stride+j] = best
		}
	}
	s.pairs = s.pairs[:0]
	s.left = grow(s.left, m)
	for i := range s.left {
		s.left[i] = -1
	}
	// Backtrack, preferring matches so ties yield maximal pairings.
	const eps = 1e-9
	i, j := m, n
	for i > 0 || j > 0 {
		cur := dp[i*stride+j]
		switch {
		case i > 0 && j > 0 && cur >= dp[(i-1)*stride+j-1]+pairCost[(i-1)*n+j-1]-eps && cur <= dp[(i-1)*stride+j-1]+pairCost[(i-1)*n+j-1]+eps:
			s.pairs = append(s.pairs, [2]int{i - 1, j - 1})
			s.left[i-1] = j - 1
			i, j = i-1, j-1
		case i > 0 && cur >= dp[(i-1)*stride+j]+del[i-1]-eps && cur <= dp[(i-1)*stride+j]+del[i-1]+eps:
			i--
		default:
			j--
		}
	}
	// Reverse into increasing order.
	for a, b := 0, len(s.pairs)-1; a < b; a, b = a+1, b-1 {
		s.pairs[a], s.pairs[b] = s.pairs[b], s.pairs[a]
	}
	return Result{Cost: dp[m*stride+n], Pairs: s.pairs, left: s.left}
}

// fill stages closure-provided costs into the Scratch's flat row
// buffers for the closure-based package API.
func (s *Scratch) fill(m, n int, pair func(i, j int) float64, del func(i int) float64, ins func(j int) float64) (pairCost, dels, inss []float64) {
	s.pairBuf = grow(s.pairBuf, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s.pairBuf[i*n+j] = pair(i, j)
		}
	}
	s.delBuf = grow(s.delBuf, m)
	for i := 0; i < m; i++ {
		s.delBuf[i] = del(i)
	}
	s.insBuf = grow(s.insBuf, n)
	for j := 0; j < n; j++ {
		s.insBuf[j] = ins(j)
	}
	return s.pairBuf, s.delBuf, s.insBuf
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Bipartite is the closure-based convenience form of
// (*Scratch).Bipartite; the returned Result owns its memory.
func Bipartite(m, n int, pair func(i, j int) float64, del func(i int) float64, ins func(j int) float64) Result {
	s := scratchPool.Get().(*Scratch)
	pairCost, dels, inss := s.fill(m, n, pair, del, ins)
	res := s.Bipartite(m, n, pairCost, dels, inss).Clone()
	scratchPool.Put(s)
	return res
}

// NonCrossing is the closure-based convenience form of
// (*Scratch).NonCrossing; the returned Result owns its memory.
func NonCrossing(m, n int, pair func(i, j int) float64, del func(i int) float64, ins func(j int) float64) Result {
	s := scratchPool.Get().(*Scratch)
	pairCost, dels, inss := s.fill(m, n, pair, del, ins)
	res := s.NonCrossing(m, n, pairCost, dels, inss).Clone()
	scratchPool.Put(s)
	return res
}
