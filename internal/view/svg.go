package view

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/wfrun"
)

// layout assigns layered coordinates to a run graph: x by longest
// distance from the source, y by order within the layer.
type layout struct {
	pos    map[graph.NodeID][2]int
	layers int
	tall   int
}

func layoutRun(g *graph.Graph) layout {
	order, err := g.TopoOrder()
	if err != nil {
		return layout{pos: map[graph.NodeID][2]int{}}
	}
	depth := make(map[graph.NodeID]int, len(order))
	for _, n := range order {
		for _, e := range g.Out(n) {
			if d := depth[n] + 1; d > depth[e.To] {
				depth[e.To] = d
			}
		}
	}
	byLayer := map[int][]graph.NodeID{}
	maxLayer := 0
	for _, n := range order {
		d := depth[n]
		byLayer[d] = append(byLayer[d], n)
		if d > maxLayer {
			maxLayer = d
		}
	}
	l := layout{pos: make(map[graph.NodeID][2]int, len(order)), layers: maxLayer + 1}
	for d := 0; d <= maxLayer; d++ {
		ns := byLayer[d]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		for i, n := range ns {
			l.pos[n] = [2]int{d, i}
			if i+1 > l.tall {
				l.tall = i + 1
			}
		}
	}
	return l
}

const (
	cellW, cellH = 110, 64
	margin       = 40
	radius       = 16
)

func statusColor(s Status) string {
	switch s {
	case Deleted:
		return "#cc2222"
	case Inserted:
		return "#22aa44"
	case Implicit:
		return "#8888cc"
	}
	return "#999999"
}

// runCanvas computes the layered layout of a run graph and the canvas
// it needs — the single source of the SVG dimension arithmetic.
func runCanvas(g *graph.Graph) (l layout, width, height int) {
	l = layoutRun(g)
	width = margin*2 + (l.layers-1)*cellW + 2*radius
	height = margin*2 + (l.tall-1)*cellH + 2*radius
	if l.tall == 0 {
		height = margin * 2
	}
	return l, width, height
}

// RenderSVG draws a run graph with edges colored by diff status
// (red = deleted, green = inserted, gray = kept, blue dashed =
// implicit loop edges), in the style of the prototype's run panes.
func RenderSVG(r *wfrun.Run, status map[graph.Edge]Status) string {
	l, width, height := runCanvas(r.Graph)
	return renderSVG(r, status, l, width, height)
}

func renderSVG(r *wfrun.Run, status map[graph.Edge]Status, l layout, width, height int) string {
	return renderGraph(r.Graph, status, l, width, height)
}

// renderGraph draws any layered flow graph with status-colored edges —
// the shared core of the run panes and the spec-evolution overlay.
func renderGraph(g *graph.Graph, status map[graph.Edge]Status, l layout, width, height int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	b.WriteString(`<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="6" markerHeight="6" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z" fill="context-stroke"/></marker></defs>`)
	coord := func(n graph.NodeID) (int, int) {
		p := l.pos[n]
		return margin + radius + p[0]*cellW, margin + radius + p[1]*cellH
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})
	for _, e := range edges {
		x1, y1 := coord(e.From)
		x2, y2 := coord(e.To)
		st := status[e]
		dash := ""
		if st == Implicit {
			dash = ` stroke-dasharray="6,4"`
		}
		// Offset parallel edges so they stay distinguishable.
		off := e.Key * 6
		fmt.Fprintf(&b,
			`<path d="M %d %d C %d %d, %d %d, %d %d" fill="none" stroke="%s" stroke-width="2"%s marker-end="url(#arrow)"/>`,
			x1, y1, (x1+x2)/2, y1+off, (x1+x2)/2, y2+off, x2, y2, statusColor(st), dash)
	}
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		x, y := coord(n)
		fmt.Fprintf(&b, `<circle class="wfnode" data-inst="%s" cx="%d" cy="%d" r="%d" fill="#ffffff" stroke="#333333" stroke-width="1.5"/>`,
			html.EscapeString(string(n)), x, y, radius)
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" dominant-baseline="middle" font-size="10" font-family="monospace">%s</text>`,
			x, y, html.EscapeString(string(n)))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// PairSVG renders the prototype's two run panes — source with deleted
// paths in red, target with inserted paths in green — side by side in
// one standalone SVG document, captioned with the edit distance. This
// is the image the diff service ships for `GET .../svg`.
func (d *Diff) PairSVG(srcTitle, dstTitle string) string {
	l1, w1, h1 := runCanvas(d.R1.Graph)
	l2, w2, h2 := runCanvas(d.R2.Graph)
	const gap, caption = 24, 22
	width := w1 + gap + w2
	height := max(h1, h2) + caption
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="15" text-anchor="middle" font-size="13" font-family="sans-serif">%s (deleted in red)</text>`,
		w1/2, html.EscapeString(srcTitle))
	fmt.Fprintf(&b, `<text x="%d" y="15" text-anchor="middle" font-size="13" font-family="sans-serif">%s (inserted in green)</text>`,
		w1+gap+w2/2, html.EscapeString(dstTitle))
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-size="12" font-family="sans-serif" fill="#555555">edit distance %g (%s cost)</text>`,
		width/2, height-6, d.Result.Distance, html.EscapeString(d.Model.Name()))
	fmt.Fprintf(&b, `<g transform="translate(0,%d)">%s</g>`, caption, renderSVG(d.R1, d.status1, l1, w1, h1))
	fmt.Fprintf(&b, `<g transform="translate(%d,%d)">%s</g>`, w1+gap, caption, renderSVG(d.R2, d.status2, l2, w2, h2))
	b.WriteString(`</svg>`)
	return b.String()
}

// HTML renders the full PDiffView page: source and target runs side by
// side with colored differences, the statistics summary, the cluster
// rollup, and the step-by-step edit script.
func (d *Diff) HTML(title string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString(`</title><style>
body { font-family: sans-serif; margin: 1.5em; }
.panes { display: flex; gap: 2em; align-items: flex-start; }
.pane { border: 1px solid #ccc; padding: 0.5em; overflow: auto; }
pre { background: #f6f6f6; padding: 0.8em; }
.legend span { margin-right: 1.2em; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(title))
	b.WriteString(`<div class="legend">
<span style="color:#cc2222">&#9632; deleted path</span>
<span style="color:#22aa44">&#9632; inserted path</span>
<span style="color:#999999">&#9632; kept</span>
<span style="color:#8888cc">&#9632; implicit loop edge</span>
</div>`)
	b.WriteString("<h2>Summary</h2><pre>" + html.EscapeString(d.Summary()) + "</pre>")
	b.WriteString(`<div class="panes">`)
	b.WriteString(`<div class="pane"><h2>Source run</h2>` + RenderSVG(d.R1, d.status1) + `</div>`)
	b.WriteString(`<div class="pane"><h2>Target run</h2>` + RenderSVG(d.R2, d.status2) + `</div>`)
	b.WriteString(`</div>`)
	b.WriteString("<h2>Composite modules</h2><pre>" + html.EscapeString(d.ClusterReport(2)) + "</pre>")
	b.WriteString("<h2>Edit script</h2>")
	b.WriteString(`<p>Click an operation to highlight its path in the run panes; the compacted view folds detected path replacements.</p><ol id="script">`)
	for _, op := range d.Script.Ops {
		fmt.Fprintf(&b, `<li class="op" data-nodes="%s"><code>%s</code></li>`,
			html.EscapeString(strings.Join(op.PathNodes, ",")),
			html.EscapeString(op.String()))
	}
	b.WriteString(`</ol>`)
	b.WriteString("<h3>With detected path replacements</h3><pre>" + html.EscapeString(RenderCompact(d.Script)) + "</pre>")
	b.WriteString(stepScript)
	b.WriteString("</body></html>")
	return b.String()
}

// stepScript is the inline step-through behaviour of the prototype:
// selecting an edit operation highlights the node instances on its
// elementary path in both run panes.
const stepScript = `<script>
(function () {
  var ops = document.querySelectorAll('#script .op');
  function clear() {
    document.querySelectorAll('.wfnode').forEach(function (n) {
      n.setAttribute('fill', '#ffffff');
      n.setAttribute('stroke-width', '1.5');
    });
    ops.forEach(function (o) { o.style.background = ''; });
  }
  ops.forEach(function (op) {
    op.style.cursor = 'pointer';
    op.addEventListener('click', function () {
      clear();
      op.style.background = '#fff3bf';
      var wanted = {};
      op.getAttribute('data-nodes').split(',').forEach(function (id) {
        // Temporary scratch instances (label~k) exist in neither pane.
        wanted[id] = true;
      });
      document.querySelectorAll('.wfnode').forEach(function (n) {
        if (wanted[n.getAttribute('data-inst')]) {
          n.setAttribute('fill', '#ffe066');
          n.setAttribute('stroke-width', '3');
        }
      });
    });
  });
})();
</script>`
