package view

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/wfrun"
)

// RenderDOT emits a Graphviz dot description of a run with edges
// colored by diff status, for users who prefer their own layout
// toolchain over the built-in SVG renderer. Node instances become dot
// nodes labeled "instance\nmodule"; implicit loop edges are dashed.
func RenderDOT(r *wfrun.Run, status map[graph.Edge]Status) string {
	var b strings.Builder
	b.WriteString("digraph run {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n")
	nodes := r.Graph.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s\"];\n", string(n), string(n), r.Graph.Label(n))
	}
	edges := r.Graph.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})
	for _, e := range edges {
		attrs := []string{fmt.Sprintf("color=%q", statusColor(status[e]))}
		if status[e] == Implicit {
			attrs = append(attrs, "style=dashed")
		}
		if status[e] == Deleted || status[e] == Inserted {
			attrs = append(attrs, "penwidth=2")
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", string(e.From), string(e.To), strings.Join(attrs, " "))
	}
	b.WriteString("}\n")
	return b.String()
}
