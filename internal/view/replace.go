package view

import (
	"fmt"
	"strings"

	"repro/internal/edit"
)

// The paper's edit operations are deliberately atomic; Section III-C.1
// notes that "more complex operations ... such as a path replacement
// operation that replaces one path by another ... may be detected by
// post-processing the output of our algorithm". CompactScript performs
// that post-processing: a deletion and an insertion of elementary
// paths between the same pair of node instances are folded into one
// Replace entry.

// CompactOp is either a single elementary operation or a detected
// path replacement.
type CompactOp struct {
	// Replace pairs Del with Ins; when false only Op is set.
	Replace bool
	Op      edit.Op // single op (Replace == false)
	Del     edit.Op // deleted path (Replace == true)
	Ins     edit.Op // inserted path (Replace == true)
}

// String renders the compact operation.
func (c CompactOp) String() string {
	if !c.Replace {
		return c.Op.String()
	}
	return fmt.Sprintf("(%s)→(%s) cost=%g [replace]",
		strings.Join(c.Del.PathNodes, ","),
		strings.Join(c.Ins.PathNodes, ","),
		c.Del.Cost+c.Ins.Cost)
}

// CompactScript folds delete/insert pairs over the same terminals into
// path replacements. Temporary scratch operations are never folded
// (they are an artifact of unstable matches, not a semantic change),
// and each operation participates in at most one replacement. The
// total cost is unchanged: a replacement still accounts for both
// underlying operations.
func CompactScript(s *edit.Script) []CompactOp {
	used := make([]bool, len(s.Ops))
	var out []CompactOp
	endpoints := func(op edit.Op) (string, string, bool) {
		if len(op.PathNodes) < 2 {
			return "", "", false
		}
		return op.PathNodes[0], op.PathNodes[len(op.PathNodes)-1], true
	}
	for i, op := range s.Ops {
		if used[i] || op.Temporary || op.Kind != edit.Delete {
			continue
		}
		from, to, ok := endpoints(op)
		if !ok {
			continue
		}
		for j, cand := range s.Ops {
			if used[j] || j == i || cand.Temporary || cand.Kind != edit.Insert {
				continue
			}
			cfrom, cto, ok := endpoints(cand)
			if !ok || cfrom != from || cto != to {
				continue
			}
			used[i], used[j] = true, true
			out = append(out, CompactOp{Replace: true, Del: op, Ins: cand})
			break
		}
	}
	for i, op := range s.Ops {
		if !used[i] {
			out = append(out, CompactOp{Op: op})
		}
	}
	return out
}

// RenderCompact renders the post-processed script, one entry per line.
func RenderCompact(s *edit.Script) string {
	var b strings.Builder
	for i, c := range CompactScript(s) {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, c.String())
	}
	return b.String()
}
