package view

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/graph"
)

func fig2Diff(t *testing.T) *Diff {
	t.Helper()
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	d, err := New(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEdgeClassification(t *testing.T) {
	d := fig2Diff(t)
	s1 := d.EdgeStatus1()
	s2 := d.EdgeStatus2()
	if len(s1) != d.R1.NumEdges() || len(s2) != d.R2.NumEdges() {
		t.Fatal("every edge must be classified")
	}
	// R1's (2a,3b,6a) copy is deleted per the Fig. 3 script.
	del := 0
	for e, st := range s1 {
		if st == Deleted {
			del++
			if d.R1.Graph.Label(e.From) == "1" {
				t.Fatalf("edge %s should not be deleted", e)
			}
		}
		if st == Inserted {
			t.Fatalf("source edges can never be 'inserted'")
		}
	}
	if del != 2 {
		t.Fatalf("deleted edges = %d, want 2 (the 3b copy)", del)
	}
	ins := 0
	for _, st := range s2 {
		if st == Inserted {
			ins++
		}
	}
	// Inserted: the (2a,4b,6a) copy (2 edges) plus the whole second
	// workflow copy (6 edges).
	if ins != 8 {
		t.Fatalf("inserted edges = %d, want 8", ins)
	}
}

func TestSummary(t *testing.T) {
	d := fig2Diff(t)
	sum := d.Summary()
	for _, want := range []string{"edit distance: 4", "source run:", "target run:", "edit script: 4 operations"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestClusters(t *testing.T) {
	d := fig2Diff(t)
	root := d.Clusters(0)
	if len(root) != 1 {
		t.Fatalf("depth 0 should have one cluster, got %d", len(root))
	}
	if !root[0].Changed() {
		t.Fatal("the whole workflow changed")
	}
	total := root[0].Kept + root[0].Deleted + root[0].Inserted
	if total != d.R1.Tree.CountLeaves()+d.R2.Tree.CountLeaves() {
		t.Fatalf("cluster tally %d != total leaves %d", total,
			d.R1.Tree.CountLeaves()+d.R2.Tree.CountLeaves())
	}
	deeper := d.Clusters(3)
	if len(deeper) <= 1 {
		t.Fatal("deeper zoom should split clusters")
	}
	// Tallies must be preserved across depths.
	k, del, ins := 0, 0, 0
	for _, c := range deeper {
		k += c.Kept
		del += c.Deleted
		ins += c.Inserted
	}
	if k != root[0].Kept || del != root[0].Deleted || ins != root[0].Inserted {
		t.Fatal("zooming must preserve totals")
	}
	report := d.ClusterReport(3)
	if !strings.Contains(report, "*") {
		t.Fatalf("report should mark changed clusters:\n%s", report)
	}
}

func TestRenderSVG(t *testing.T) {
	d := fig2Diff(t)
	svg := RenderSVG(d.R1, d.EdgeStatus1())
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "#cc2222") {
		t.Fatal("deleted edges should be red")
	}
	// Every node instance must appear.
	for _, n := range d.R1.Graph.Nodes() {
		if !strings.Contains(svg, ">"+string(n)+"<") {
			t.Fatalf("node %s missing from SVG", n)
		}
	}
}

func TestRenderSVGWithLoops(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	r3 := fixtures.Fig2R3(sp)
	one := fixtures.Fig2R3(sp)
	d, err := New(r3, one, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderSVG(d.R1, d.EdgeStatus1())
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("implicit edges should be dashed")
	}
	if d.Result.Distance != 0 {
		t.Fatalf("identical runs should have distance 0, got %g", d.Result.Distance)
	}
}

func TestHTML(t *testing.T) {
	d := fig2Diff(t)
	page := d.HTML("Fig. 2 example")
	for _, want := range []string{"<!DOCTYPE html>", "Source run", "Target run", "Edit script", "Composite modules"} {
		if !strings.Contains(page, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	if !strings.Contains(page, "&#9632;") {
		t.Fatal("legend missing")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{Kept: "kept", Deleted: "deleted", Inserted: "inserted", Implicit: "implicit"} {
		if s.String() != want {
			t.Fatalf("Status(%d) = %q", s, s.String())
		}
	}
	if Status(99).String() != "unknown" {
		t.Fatal("unknown status")
	}
	var zero graph.Edge
	_ = zero
}

func TestHTMLInteractiveStepping(t *testing.T) {
	d := fig2Diff(t)
	page := d.HTML("step")
	for _, want := range []string{`id="script"`, "data-nodes=", "wfnode", "<script>", "With detected path replacements"} {
		if !strings.Contains(page, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
	// Every op appears as a list item.
	if got := strings.Count(page, `class="op"`); got != len(d.Script.Ops) {
		t.Fatalf("script items = %d, want %d", got, len(d.Script.Ops))
	}
}

func TestRenderDOT(t *testing.T) {
	d := fig2Diff(t)
	dot := RenderDOT(d.R1, d.EdgeStatus1())
	if !strings.HasPrefix(dot, "digraph run {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("not a dot document:\n%s", dot)
	}
	if !strings.Contains(dot, `"2a" -> "3b"`) {
		t.Fatalf("missing edge:\n%s", dot)
	}
	if !strings.Contains(dot, "#cc2222") {
		t.Fatal("deleted edges should be red in dot output")
	}
	sp := fixtures.Fig2SpecWithLoop()
	r3 := fixtures.Fig2R3(sp)
	dv, err := New(r3, fixtures.Fig2R3(sp), cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderDOT(dv.R1, dv.EdgeStatus1()), "style=dashed") {
		t.Fatal("implicit loop edges should be dashed in dot output")
	}
}
