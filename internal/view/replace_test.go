package view

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/fixtures"
	"repro/internal/wfrun"
)

// TestCompactScriptDetectsReplacement uses the paper's Fig. 3 script:
// (2a,3b,6a)→Λ and Λ→(2a,4b,6a) share terminals 2a..6a and fold into
// one replacement.
func TestCompactScriptDetectsReplacement(t *testing.T) {
	d := fig2Diff(t)
	compact := CompactScript(d.Script)
	if len(compact) >= len(d.Script.Ops) {
		t.Fatalf("no folding happened: %d -> %d entries", len(d.Script.Ops), len(compact))
	}
	var found bool
	totalCost := 0.0
	for _, c := range compact {
		if c.Replace {
			found = true
			if c.Del.Kind != edit.Delete || c.Ins.Kind != edit.Insert {
				t.Fatalf("replacement has wrong kinds: %+v", c)
			}
			if c.Del.PathNodes[0] != c.Ins.PathNodes[0] {
				t.Fatalf("replacement endpoints disagree: %+v", c)
			}
			totalCost += c.Del.Cost + c.Ins.Cost
		} else {
			totalCost += c.Op.Cost
		}
	}
	if !found {
		t.Fatal("expected a path replacement in the Fig. 3 script")
	}
	if totalCost != d.Script.TotalCost() {
		t.Fatalf("compaction changed total cost: %g != %g", totalCost, d.Script.TotalCost())
	}
	out := RenderCompact(d.Script)
	if !strings.Contains(out, "[replace]") {
		t.Fatalf("rendering missing replacement tag:\n%s", out)
	}
}

func TestCompactScriptSkipsTemporaries(t *testing.T) {
	s := &edit.Script{Ops: []edit.Op{
		{Kind: edit.Insert, Cost: 1, PathNodes: []string{"a", "x", "b"}, Temporary: true},
		{Kind: edit.Delete, Cost: 1, PathNodes: []string{"a", "y", "b"}},
		{Kind: edit.Insert, Cost: 1, PathNodes: []string{"a", "z", "b"}},
		{Kind: edit.Delete, Cost: 1, PathNodes: []string{"a", "x", "b"}, Temporary: true},
	}}
	compact := CompactScript(s)
	// Exactly one replacement (the non-temporary pair) plus two
	// temporary singles.
	reps, singles := 0, 0
	for _, c := range compact {
		if c.Replace {
			reps++
			if c.Del.Temporary || c.Ins.Temporary {
				t.Fatal("temporaries must not fold")
			}
		} else {
			singles++
		}
	}
	if reps != 1 || singles != 2 {
		t.Fatalf("reps=%d singles=%d, want 1/2", reps, singles)
	}
}

func TestCompactScriptNoPairs(t *testing.T) {
	s := &edit.Script{Ops: []edit.Op{
		{Kind: edit.Delete, Cost: 1, PathNodes: []string{"a", "b"}},
		{Kind: edit.Insert, Cost: 1, PathNodes: []string{"c", "d"}},
	}}
	compact := CompactScript(s)
	if len(compact) != 2 {
		t.Fatalf("nothing should fold: %v", compact)
	}
	for _, c := range compact {
		if c.Replace {
			t.Fatal("spurious replacement")
		}
	}
}

func TestCompactScriptPreservesCostOnLoopDiff(t *testing.T) {
	// Property on a real diff with loops: compaction never changes
	// the total cost and never consumes an op twice.
	sp := fixtures.Fig2SpecWithLoop()
	r3 := fixtures.Fig2R3(sp)
	full, err := New(r3, fixtures.Fig2R3(sp), cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(CompactScript(full.Script)); n != 0 {
		t.Fatalf("identical runs should compact to an empty script, got %d entries", n)
	}
	one, err := wfrun.Execute(sp, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(r3, one, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range CompactScript(d.Script) {
		if c.Replace {
			total += c.Del.Cost + c.Ins.Cost
		} else {
			total += c.Op.Cost
		}
	}
	if total != d.Script.TotalCost() {
		t.Fatalf("compaction changed cost: %g != %g", total, d.Script.TotalCost())
	}
}
