package view

import (
	"fmt"
	"html"
	"strings"

	"repro/internal/graph"
	"repro/internal/spec"
)

// SpecPairSVG renders two specification versions side by side in the
// style of the run panes: modules deleted by the evolution in red on
// the source version, inserted modules in green on the target, and
// surviving modules in gray. keptA and keptB hold the spec edges the
// mapping carries across (the keys and values of
// evolve.SpecMapping.MappedModules); everything else is colored as
// deleted/inserted. caption is drawn under the panes.
func SpecPairSVG(a, b *spec.Spec, keptA, keptB map[graph.Edge]bool, titleA, titleB, caption string) string {
	statusA := make(map[graph.Edge]Status, a.G.NumEdges())
	for _, e := range a.G.Edges() {
		if keptA[e] {
			statusA[e] = Kept
		} else {
			statusA[e] = Deleted
		}
	}
	statusB := make(map[graph.Edge]Status, b.G.NumEdges())
	for _, e := range b.G.Edges() {
		if keptB[e] {
			statusB[e] = Kept
		} else {
			statusB[e] = Inserted
		}
	}
	l1, w1, h1 := runCanvas(a.G)
	l2, w2, h2 := runCanvas(b.G)
	const gap, caphead = 24, 22
	width := w1 + gap + w2
	height := max(h1, h2) + 2*caphead
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(&sb, `<text x="%d" y="15" text-anchor="middle" font-size="13" font-family="sans-serif">%s (deleted in red)</text>`,
		w1/2, html.EscapeString(titleA))
	fmt.Fprintf(&sb, `<text x="%d" y="15" text-anchor="middle" font-size="13" font-family="sans-serif">%s (inserted in green)</text>`,
		w1+gap+w2/2, html.EscapeString(titleB))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-size="12" font-family="sans-serif" fill="#555555">%s</text>`,
		width/2, height-6, html.EscapeString(caption))
	fmt.Fprintf(&sb, `<g transform="translate(0,%d)">%s</g>`, caphead, renderGraph(a.G, statusA, l1, w1, h1))
	fmt.Fprintf(&sb, `<g transform="translate(%d,%d)">%s</g>`, w1+gap, caphead, renderGraph(b.G, statusB, l2, w2, h2))
	sb.WriteString(`</svg>`)
	return sb.String()
}
