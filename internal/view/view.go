// Package view implements the PDiffView prototype substrate
// (Section VII): textual and SVG/HTML visualization of the difference
// between two runs — deleted paths in red on the source run, inserted
// paths in green on the target run — plus hierarchical clustering of
// the specification into composite modules with per-cluster change
// rollups, supporting the prototype's zoom-in/zoom-out workflow.
package view

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/graph"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// Status classifies a run edge with respect to the diff.
type Status uint8

// Edge statuses.
const (
	Kept     Status = iota // the edge's leaf is matched by the mapping
	Deleted                // present only in the source run
	Inserted               // present only in the target run
	Implicit               // loop-chaining edge (context)
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Kept:
		return "kept"
	case Deleted:
		return "deleted"
	case Inserted:
		return "inserted"
	case Implicit:
		return "implicit"
	}
	return "unknown"
}

// Diff bundles everything PDiffView shows for a pair of runs.
type Diff struct {
	R1, R2   *wfrun.Run
	Model    cost.Model
	Result   *core.Result
	Script   *edit.Script
	status1  map[graph.Edge]Status
	status2  map[graph.Edge]Status
	matched1 map[*sptree.Node]*sptree.Node
}

// New computes the diff, the edit script, and the edge classification
// for the given pair of runs.
func New(r1, r2 *wfrun.Run, m cost.Model) (*Diff, error) {
	return NewWith(core.NewEngine(m), m, r1, r2)
}

// NewWith is New with a caller-owned engine, for batch and service
// callers that pool engines. m must be the engine's own cost model.
// Everything the Diff serves (status maps, script, summary, clusters)
// is extracted before NewWith returns, so the engine may run another
// Diff immediately afterwards; only the embedded Result's
// Mapping/Script accessors are invalidated by such reuse.
func NewWith(eng *core.Engine, m cost.Model, r1, r2 *wfrun.Run) (*Diff, error) {
	res, err := eng.Diff(r1, r2)
	if err != nil {
		return nil, err
	}
	script, _, err := res.Script()
	if err != nil {
		return nil, err
	}
	d := &Diff{R1: r1, R2: r2, Model: m, Result: res, Script: script}
	d.classify()
	return d, nil
}

func (d *Diff) classify() {
	d.matched1 = make(map[*sptree.Node]*sptree.Node)
	matched2 := make(map[*sptree.Node]bool)
	for _, p := range d.Result.Mapping() {
		d.matched1[p[0]] = p[1]
		matched2[p[1]] = true
	}
	d.status1 = make(map[graph.Edge]Status, d.R1.Graph.NumEdges())
	d.status2 = make(map[graph.Edge]Status, d.R2.Graph.NumEdges())
	d.R1.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.Q {
			if _, ok := d.matched1[n]; ok {
				d.status1[n.Edge] = Kept
			} else {
				d.status1[n.Edge] = Deleted
			}
		}
		return true
	})
	d.R2.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.Q {
			if matched2[n] {
				d.status2[n.Edge] = Kept
			} else {
				d.status2[n.Edge] = Inserted
			}
		}
		return true
	})
	for _, e := range d.R1.ImplicitEdges {
		d.status1[e] = Implicit
	}
	for _, e := range d.R2.ImplicitEdges {
		d.status2[e] = Implicit
	}
}

// EdgeStatus1 classifies every edge of the source run.
func (d *Diff) EdgeStatus1() map[graph.Edge]Status { return d.status1 }

// EdgeStatus2 classifies every edge of the target run.
func (d *Diff) EdgeStatus2() map[graph.Edge]Status { return d.status2 }

func countStatus(m map[graph.Edge]Status, s Status) int {
	n := 0
	for _, v := range m {
		if v == s {
			n++
		}
	}
	return n
}

// Summary renders the statistics panel of the prototype: run sizes,
// edit distance, operation counts and change counts.
func (d *Diff) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "edit distance: %g (%s cost)\n", d.Result.Distance, d.Model.Name())
	fmt.Fprintf(&b, "source run: %d nodes, %d edges (%d deleted, %d kept)\n",
		d.R1.NumNodes(), d.R1.NumEdges(), countStatus(d.status1, Deleted), countStatus(d.status1, Kept))
	fmt.Fprintf(&b, "target run: %d nodes, %d edges (%d inserted, %d kept)\n",
		d.R2.NumNodes(), d.R2.NumEdges(), countStatus(d.status2, Inserted), countStatus(d.status2, Kept))
	ins, del, loops, temps := 0, 0, 0, 0
	for _, op := range d.Script.Ops {
		switch op.Kind {
		case edit.Insert:
			ins++
		case edit.Delete:
			del++
		}
		if op.LoopOp {
			loops++
		}
		if op.Temporary {
			temps++
		}
	}
	fmt.Fprintf(&b, "edit script: %d operations (%d insertions, %d deletions, %d loop expansions/contractions, %d scratch)\n",
		len(d.Script.Ops), ins, del, loops, temps)
	return b.String()
}

// ClusterChange summarizes one composite module (a specification
// subtree at the chosen depth): how many of its edge executions were
// kept, deleted and inserted across the two runs. Clusters with
// Deleted+Inserted == 0 indicate no change and can be ignored when
// zooming.
type ClusterChange struct {
	// Label names the composite module by its terminals and type.
	Label string
	// Kept counts matched edge executions (in either run).
	Kept int
	// Deleted and Inserted count unmatched edge executions in the
	// source and target run respectively.
	Deleted, Inserted int
}

// Changed reports whether the cluster contains any difference.
func (c ClusterChange) Changed() bool { return c.Deleted+c.Inserted > 0 }

// Clusters rolls the diff up to composite modules: specification
// subtrees at the given depth (depth 0 is the whole workflow; larger
// depths zoom in). This is the prototype's hierarchy view.
func (d *Diff) Clusters(depth int) []ClusterChange {
	// Map each specification Q node to its ancestor at the cut depth.
	anc := make(map[*sptree.Node]*sptree.Node)
	var walk func(n *sptree.Node, level int, cut *sptree.Node)
	walk = func(n *sptree.Node, level int, cut *sptree.Node) {
		if level <= depth || cut == nil {
			cut = n
		}
		if n.Type == sptree.Q {
			anc[n] = cut
			return
		}
		for _, c := range n.Children {
			walk(c, level+1, cut)
		}
	}
	walk(d.R1.Spec.Tree, 0, nil)

	agg := make(map[*sptree.Node]*ClusterChange)
	order := []*sptree.Node{}
	get := func(spn *sptree.Node) *ClusterChange {
		cl, ok := agg[spn]
		if !ok {
			label := fmt.Sprintf("%s[%s..%s]", spn.Type, spn.Src, spn.Dst)
			if spn.Type == sptree.Q {
				label = fmt.Sprintf("Q(%s,%s)", spn.Src, spn.Dst)
			}
			cl = &ClusterChange{Label: label}
			agg[spn] = cl
			order = append(order, spn)
		}
		return cl
	}
	tally := func(tree *sptree.Node, status map[graph.Edge]Status, insertedSide bool) {
		tree.Walk(func(n *sptree.Node) bool {
			if n.Type != sptree.Q || n.Spec == nil {
				return true
			}
			cl := get(anc[n.Spec])
			switch status[n.Edge] {
			case Kept:
				cl.Kept++
			case Deleted:
				cl.Deleted++
			case Inserted:
				cl.Inserted++
			}
			return true
		})
	}
	tally(d.R1.Tree, d.status1, false)
	tally(d.R2.Tree, d.status2, true)
	sort.Slice(order, func(i, j int) bool { return order[i].ID < order[j].ID })
	out := make([]ClusterChange, 0, len(order))
	for _, spn := range order {
		out = append(out, *agg[spn])
	}
	return out
}

// ClusterReport renders the cluster rollup as text, marking changed
// composite modules.
func (d *Diff) ClusterReport(depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "composite modules at depth %d:\n", depth)
	for _, c := range d.Clusters(depth) {
		marker := " "
		if c.Changed() {
			marker = "*"
		}
		fmt.Fprintf(&b, "%s %-24s kept=%-4d deleted=%-4d inserted=%-4d\n",
			marker, c.Label, c.Kept, c.Deleted, c.Inserted)
	}
	return b.String()
}
