// Package wfrun implements valid runs of SP-workflow specifications:
// the execution function f′ of Section III-D/VI (series, parallel,
// fork and loop executions), materialization of run trees into run
// graphs (fork copies share their terminals, loop iterations are
// chained by implicit edges), and the deterministic tree execution
// function f″ of Algorithms 2 and 5 that derives the annotated SP-tree
// of a run given as a bare graph.
package wfrun

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// Decider supplies the nondeterministic choices of the execution
// function f′: which parallel branches to take, how many fork copies
// to replicate, and how many loop iterations to execute.
type Decider interface {
	// ParallelSubset returns a nonempty set of child indices of the
	// specification P node to execute.
	ParallelSubset(p *sptree.Node) []int
	// ForkCopies returns the number (>= 1) of copies a fork
	// execution of the specification F node replicates.
	ForkCopies(f *sptree.Node) int
	// LoopIterations returns the number (>= 1) of iterations a loop
	// execution of the specification L node performs.
	LoopIterations(l *sptree.Node) int
}

// FullDecider executes every parallel branch once and replicates a
// single fork copy and a single loop iteration: the minimal "take
// everything once" run.
type FullDecider struct{}

// ParallelSubset implements Decider.
func (FullDecider) ParallelSubset(p *sptree.Node) []int {
	all := make([]int, len(p.Children))
	for i := range all {
		all[i] = i
	}
	return all
}

// ForkCopies implements Decider.
func (FullDecider) ForkCopies(*sptree.Node) int { return 1 }

// LoopIterations implements Decider.
func (FullDecider) LoopIterations(*sptree.Node) int { return 1 }

// Run is a valid run of a specification: an annotated SP-tree aligned
// to the specification tree, together with its materialized run graph.
// Node IDs in the graph are label instances ("3b"); tree Q leaves
// carry run-graph edges. The tree omits the implicit loop edges, which
// exist only in the graph.
type Run struct {
	Spec  *spec.Spec
	Tree  *sptree.Node
	Graph *graph.Graph

	// ImplicitEdges are the loop-chaining edges (t(H), s(H)) present
	// in the graph but absent from the tree.
	ImplicitEdges []graph.Edge
}

// namer allocates unique node-instance IDs per label: 1 → "1a", "1b",
// … "1z", "1a1", "1a2", …
type namer struct {
	seq map[string]int
}

func newNamer() *namer { return &namer{seq: make(map[string]int)} }

func (nm *namer) next(label string) graph.NodeID {
	i := nm.seq[label]
	nm.seq[label]++
	if i < 26 {
		return graph.NodeID(fmt.Sprintf("%s%c", label, 'a'+i))
	}
	return graph.NodeID(fmt.Sprintf("%sa%d", label, i-25))
}

// Execute produces a valid run of sp by applying the execution
// function f′ with choices drawn from d. The resulting run carries
// both the annotated run tree and the materialized graph.
func Execute(sp *spec.Spec, d Decider) (*Run, error) {
	r := &Run{Spec: sp, Graph: graph.New()}
	nm := newNamer()
	src := nm.next(sp.Tree.Src)
	dst := nm.next(sp.Tree.Dst)
	r.Graph.MustAddNode(src, sp.Tree.Src)
	r.Graph.MustAddNode(dst, sp.Tree.Dst)
	root, err := r.execute(sp.Tree, d, nm, src, dst)
	if err != nil {
		return nil, err
	}
	r.Tree = root
	r.Tree.Finalize()
	if err := sptree.ValidateRunTree(r.Tree, sp.Tree); err != nil {
		return nil, fmt.Errorf("wfrun: execution produced an invalid run tree: %w", err)
	}
	return r, nil
}

func (r *Run) execute(tg *sptree.Node, d Decider, nm *namer, src, dst graph.NodeID) (*sptree.Node, error) {
	switch tg.Type {
	case sptree.Q:
		e := r.Graph.MustAddEdge(src, dst)
		n := sptree.NewQ(e, tg.Src, tg.Dst)
		n.Spec = tg
		return n, nil

	case sptree.S:
		bounds := make([]graph.NodeID, len(tg.Children)+1)
		bounds[0] = src
		bounds[len(tg.Children)] = dst
		for i := 1; i < len(tg.Children); i++ {
			label := tg.Children[i].Src
			id := nm.next(label)
			r.Graph.MustAddNode(id, label)
			bounds[i] = id
		}
		n := &sptree.Node{Type: sptree.S, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		for i, c := range tg.Children {
			child, err := r.execute(c, d, nm, bounds[i], bounds[i+1])
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
		}
		return n, nil

	case sptree.P:
		subset := d.ParallelSubset(tg)
		if len(subset) == 0 {
			return nil, fmt.Errorf("wfrun: decider chose an empty parallel subset")
		}
		seen := make(map[int]bool, len(subset))
		n := &sptree.Node{Type: sptree.P, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		for _, i := range subset {
			if i < 0 || i >= len(tg.Children) || seen[i] {
				return nil, fmt.Errorf("wfrun: decider chose invalid parallel subset %v", subset)
			}
			seen[i] = true
			child, err := r.execute(tg.Children[i], d, nm, src, dst)
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
		}
		return n, nil

	case sptree.F:
		copies := d.ForkCopies(tg)
		if copies < 1 {
			return nil, fmt.Errorf("wfrun: decider chose %d fork copies", copies)
		}
		n := &sptree.Node{Type: sptree.F, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		for i := 0; i < copies; i++ {
			child, err := r.execute(tg.Children[0], d, nm, src, dst)
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
		}
		return n, nil

	case sptree.L:
		iters := d.LoopIterations(tg)
		if iters < 1 {
			return nil, fmt.Errorf("wfrun: decider chose %d loop iterations", iters)
		}
		n := &sptree.Node{Type: sptree.L, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		iterSrc := src
		for i := 0; i < iters; i++ {
			iterDst := dst
			if i < iters-1 {
				iterDst = nm.next(tg.Dst)
				r.Graph.MustAddNode(iterDst, tg.Dst)
			}
			child, err := r.execute(tg.Children[0], d, nm, iterSrc, iterDst)
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
			if i < iters-1 {
				nextSrc := nm.next(tg.Src)
				r.Graph.MustAddNode(nextSrc, tg.Src)
				imp := r.Graph.MustAddEdge(iterDst, nextSrc)
				r.ImplicitEdges = append(r.ImplicitEdges, imp)
				iterSrc = nextSrc
			}
		}
		return n, nil
	}
	return nil, fmt.Errorf("wfrun: unknown specification node type %s", tg.Type)
}

// EdgeRefs returns the mapping from run edges to the specification
// edges they instantiate, read off the annotated tree. It is the
// edgeRef argument Derive needs to disambiguate runs of multigraph
// specifications. Implicit loop edges are absent (they instantiate no
// specification edge).
func (r *Run) EdgeRefs() map[graph.Edge]graph.Edge {
	refs := make(map[graph.Edge]graph.Edge)
	r.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.Q && n.Spec != nil {
			refs[n.Edge] = n.Spec.Edge
		}
		return true
	})
	return refs
}

// NumEdges returns the total number of edges of the run graph,
// including implicit loop edges (the size measure used throughout the
// paper's evaluation).
func (r *Run) NumEdges() int { return r.Graph.NumEdges() }

// NumNodes returns the number of node instances in the run graph.
func (r *Run) NumNodes() int { return r.Graph.NumNodes() }

// Validate re-checks all run invariants: the tree aligns with the
// specification tree, the graph is an acyclic flow network, and the
// label homomorphism into the specification (extended with the loop
// back edges) holds.
func (r *Run) Validate() error {
	if err := sptree.ValidateRunTree(r.Tree, r.Spec.Tree); err != nil {
		return err
	}
	if _, _, err := r.Graph.CheckFlowNetwork(); err != nil {
		return err
	}
	if !r.Graph.IsAcyclic() {
		return fmt.Errorf("wfrun: run graph has a cycle")
	}
	return checkHomomorphism(r.Graph, r.Spec)
}

// checkHomomorphism verifies the label homomorphism of Section III-B,
// where the specification edge set is extended with the implicit back
// edge (t(H), s(H)) of every loop subgraph H ∈ L.
func checkHomomorphism(run *graph.Graph, sp *spec.Spec) error {
	allowed := make(map[[2]string]bool, sp.G.NumEdges())
	for _, e := range sp.G.Edges() {
		allowed[[2]string{sp.G.Label(e.From), sp.G.Label(e.To)}] = true
	}
	for _, loop := range loopNodes(sp.Tree) {
		allowed[[2]string{loop.Dst, loop.Src}] = true
	}
	for _, e := range run.Edges() {
		key := [2]string{run.Label(e.From), run.Label(e.To)}
		if !allowed[key] {
			return fmt.Errorf("wfrun: run edge %s maps to (%s,%s), absent from the specification", e, key[0], key[1])
		}
	}
	return nil
}

func loopNodes(tree *sptree.Node) []*sptree.Node {
	var out []*sptree.Node
	tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.L {
			out = append(out, n)
		}
		return true
	})
	return out
}
