package wfrun

import (
	"repro/internal/graph"
	"repro/internal/spgraph"
	"repro/internal/sptree"
)

// decomposeFn produces the canonical SP-tree of a run graph; it is a
// variable so tests can observe or stub the decomposition step.
var decomposeFn = func(g *graph.Graph) (*sptree.Node, error) {
	return spgraph.Decompose(g)
}
