package wfrun

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// Event is one node-status observation from a still-executing run: a
// new provenance edge between two task instances, optionally carrying
// the specification edge it instantiates. It is the streaming analogue
// of one <edge> row in the run XML; node labels ride along so an event
// can introduce instances the receiver has not seen yet.
type Event struct {
	From      string `json:"from"`
	To        string `json:"to"`
	FromLabel string `json:"from_label,omitempty"`
	ToLabel   string `json:"to_label,omitempty"`
	SpecFrom  string `json:"spec_from,omitempty"`
	SpecTo    string `json:"spec_to,omitempty"`
	SpecKey   int    `json:"spec_key,omitempty"`
	Implicit  bool   `json:"implicit,omitempty"`
}

// liveEdge is one accepted event, resolved against the specification.
type liveEdge struct {
	e        graph.Edge
	ref      graph.Edge // zero when implicit
	implicit bool
}

// liveComponent tracks the run subgraph instantiating one top-level
// child of the specification tree (for S-rooted specifications), or
// the whole tree otherwise. Each component caches its derived run
// subtree and is re-derived only when new events land inside it —
// this is what makes live derivation incremental: an event dirties
// exactly one component, and Complete reuses every clean subtree.
type liveComponent struct {
	child   *sptree.Node // specification subtree this component instantiates
	nodeSet map[graph.NodeID]bool
	edges   []liveEdge
	tree    *sptree.Node // cached derived subtree, nil until first success
	dirty   bool         // events arrived since tree was derived
}

// Live incrementally builds a run from a stream of Events. Events may
// arrive in any order; derivation of a component is attempted
// opportunistically and simply deferred while its subgraph is not yet
// a flow network. Live is not safe for concurrent use.
type Live struct {
	sp *spec.Spec

	nodeOrder []graph.NodeID
	labels    map[graph.NodeID]string
	keySeq    map[[2]graph.NodeID]int

	specOf   map[graph.Edge]graph.Edge
	implicit map[graph.Edge]bool

	byLabels      map[[2]string][]graph.Edge
	implicitPairs map[[2]string][]int // loop (dst,src) label pair → component indices

	comps   []liveComponent
	leafOf  []int // specification leaf index → component index
	counts  []int // executed instances per specification leaf
	events  int
	derived int // component derivations performed
	reused  int // cached component subtrees accepted by Complete

	done bool
}

// NewLive starts the incremental derivation of a run of sp.
func NewLive(sp *spec.Spec) *Live {
	l := &Live{
		sp:            sp,
		labels:        make(map[graph.NodeID]string),
		keySeq:        make(map[[2]graph.NodeID]int),
		specOf:        make(map[graph.Edge]graph.Edge),
		implicit:      make(map[graph.Edge]bool),
		byLabels:      make(map[[2]string][]graph.Edge),
		implicitPairs: make(map[[2]string][]int),
	}
	for _, e := range sp.G.Edges() {
		k := [2]string{sp.G.Label(e.From), sp.G.Label(e.To)}
		l.byLabels[k] = append(l.byLabels[k], e)
	}
	// Top-level series children partition the specification leaves into
	// contiguous intervals; each becomes one independently derivable
	// component. Any other root shape is a single component.
	var children []*sptree.Node
	if sp.Tree.Type == sptree.S {
		children = sp.Tree.Children
	} else {
		children = []*sptree.Node{sp.Tree}
	}
	_, total := sp.Interval(sp.Tree)
	l.leafOf = make([]int, total)
	l.counts = make([]int, total)
	for i, c := range children {
		l.comps = append(l.comps, liveComponent{child: c, nodeSet: make(map[graph.NodeID]bool)})
		lo, hi := sp.Interval(c)
		for leaf := lo; leaf < hi; leaf++ {
			l.leafOf[leaf] = i
		}
	}
	for ci, c := range children {
		c.Walk(func(n *sptree.Node) bool {
			if n.Type == sptree.L {
				k := [2]string{n.Dst, n.Src}
				l.implicitPairs[k] = append(l.implicitPairs[k], ci)
			}
			return true
		})
	}
	return l
}

// resolve maps an event to its specification edge (or implicit loop
// pair) and to the component it lands in.
func (l *Live) resolve(ev Event, fromLabel, toLabel string) (ref graph.Edge, implicit bool, comp int, err error) {
	k := [2]string{fromLabel, toLabel}
	if ev.Implicit {
		comps, ok := l.implicitPairs[k]
		if !ok {
			return ref, false, 0, fmt.Errorf("wfrun: implicit event (%s,%s) matches no loop back edge", fromLabel, toLabel)
		}
		if len(uniqueInts(comps)) > 1 {
			return ref, false, 0, fmt.Errorf("wfrun: implicit event (%s,%s) is ambiguous across components", fromLabel, toLabel)
		}
		return ref, true, comps[0], nil
	}
	if ev.SpecFrom != "" {
		ref = graph.Edge{From: graph.NodeID(ev.SpecFrom), To: graph.NodeID(ev.SpecTo), Key: ev.SpecKey}
		if _, ok := l.sp.LeafIndex(ref); !ok {
			return ref, false, 0, fmt.Errorf("wfrun: event references unknown specification edge %s", ref)
		}
		// Compare labels, not node IDs: the homomorphism h preserves
		// labels, and a specification is free to label its modules
		// independently of its node identifiers.
		if l.sp.G.Label(ref.From) != fromLabel || l.sp.G.Label(ref.To) != toLabel {
			return ref, false, 0, fmt.Errorf("wfrun: event labels (%s,%s) do not match specification edge %s", fromLabel, toLabel, ref)
		}
	} else {
		cands := l.byLabels[k]
		switch {
		case len(cands) == 1:
			ref = cands[0]
		case len(cands) > 1:
			return ref, false, 0, fmt.Errorf("wfrun: event (%s,%s) is ambiguous (parallel specification edges); supply a spec reference", fromLabel, toLabel)
		case len(l.implicitPairs[k]) > 0:
			// Unmarked loop back edge: classify like the XML decoder does.
			comps := uniqueInts(l.implicitPairs[k])
			if len(comps) > 1 {
				return ref, false, 0, fmt.Errorf("wfrun: implicit event (%s,%s) is ambiguous across components", fromLabel, toLabel)
			}
			return ref, true, comps[0], nil
		default:
			return ref, false, 0, fmt.Errorf("wfrun: event (%s,%s) has no specification image", fromLabel, toLabel)
		}
	}
	leaf, _ := l.sp.LeafIndex(ref)
	return ref, false, l.leafOf[leaf], nil
}

func uniqueInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Append validates and applies one event. On success the affected
// component is marked dirty; nothing is re-derived until Sync or
// Complete.
func (l *Live) Append(ev Event) error {
	if l.done {
		return fmt.Errorf("wfrun: run already completed")
	}
	if ev.From == "" || ev.To == "" {
		return fmt.Errorf("wfrun: event with empty node id")
	}
	fromLabel, err := l.noteLabel(graph.NodeID(ev.From), ev.FromLabel)
	if err != nil {
		return err
	}
	toLabel, err := l.noteLabel(graph.NodeID(ev.To), ev.ToLabel)
	if err != nil {
		return err
	}
	ref, implicit, ci, err := l.resolve(ev, fromLabel, toLabel)
	if err != nil {
		return err
	}
	from, to := graph.NodeID(ev.From), graph.NodeID(ev.To)
	l.addNode(from, fromLabel)
	l.addNode(to, toLabel)
	pair := [2]graph.NodeID{from, to}
	e := graph.Edge{From: from, To: to, Key: l.keySeq[pair]}
	l.keySeq[pair]++
	if implicit {
		l.implicit[e] = true
	} else {
		l.specOf[e] = ref
		leaf, _ := l.sp.LeafIndex(ref)
		l.counts[leaf]++
	}
	c := &l.comps[ci]
	c.nodeSet[from] = true
	c.nodeSet[to] = true
	c.edges = append(c.edges, liveEdge{e: e, ref: ref, implicit: implicit})
	c.dirty = true
	l.events++
	return nil
}

// noteLabel resolves the label of a (possibly new) node, enforcing
// label consistency with previous events.
func (l *Live) noteLabel(id graph.NodeID, label string) (string, error) {
	if have, ok := l.labels[id]; ok {
		if label != "" && label != have {
			return "", fmt.Errorf("wfrun: node %s already seen with label %q (event says %q)", id, have, label)
		}
		return have, nil
	}
	if label == "" {
		return "", fmt.Errorf("wfrun: event introduces node %s without a label", id)
	}
	return label, nil
}

func (l *Live) addNode(id graph.NodeID, label string) {
	if _, ok := l.labels[id]; ok {
		return
	}
	l.nodeOrder = append(l.nodeOrder, id)
	l.labels[id] = label
}

// Events reports the number of accepted events; Nodes and Edges the
// size of the accumulated run graph; Counts a copy of the per-leaf
// executed-instance histogram (indexed by specification leaf index).
func (l *Live) Events() int { return l.events }
func (l *Live) Nodes() int  { return len(l.nodeOrder) }
func (l *Live) Edges() int  { return l.events }
func (l *Live) Counts() []int {
	return append([]int(nil), l.counts...)
}

// Derivations reports how many component derivations have run and how
// many cached subtrees the final assembly reused.
func (l *Live) Derivations() (derived, reused int) { return l.derived, l.reused }

// sortedEdges returns a component's edges in the canonical document
// order (the EncodeRun sort), so the derived subtree never depends on
// event arrival order and matches what a from-scratch parse produces.
func sortedEdges(edges []liveEdge) []liveEdge {
	out := append([]liveEdge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].e, out[j].e
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Key < b.Key
	})
	return out
}

// subgraph materializes the component's run subgraph: nodes in global
// arrival order, edges in canonical order (keys are preserved because
// parallel edges sort adjacent in key order and AddEdge reassigns
// keys sequentially per endpoint pair).
func (l *Live) subgraph(c *liveComponent) *graph.Graph {
	g := graph.New()
	for _, id := range l.nodeOrder {
		if c.nodeSet[id] {
			g.MustAddNode(id, l.labels[id])
		}
	}
	for _, le := range sortedEdges(c.edges) {
		g.MustAddEdge(le.e.From, le.e.To)
	}
	return g
}

// ready is a cheap completeness screen run before attempting a
// decomposition: within the component's subgraph every node except one
// source and one sink must have both an incoming and an outgoing edge.
func (c *liveComponent) ready() bool {
	if len(c.edges) == 0 {
		return false
	}
	indeg := make(map[graph.NodeID]int, len(c.nodeSet))
	outdeg := make(map[graph.NodeID]int, len(c.nodeSet))
	for _, le := range c.edges {
		outdeg[le.e.From]++
		indeg[le.e.To]++
	}
	sources, sinks := 0, 0
	for id := range c.nodeSet {
		if indeg[id] == 0 {
			sources++
		}
		if outdeg[id] == 0 {
			sinks++
		}
	}
	return sources == 1 && sinks == 1
}

// syncComponent derives (or re-derives) one component's run subtree.
func (l *Live) syncComponent(c *liveComponent) error {
	sub := l.subgraph(c)
	canon, err := decomposeRunGraph(sub)
	if err != nil {
		return fmt.Errorf("wfrun: component %s..%s is not series-parallel: %w", c.child.Src, c.child.Dst, err)
	}
	d := &deriver{sp: l.sp, g: sub, specOf: l.specOf, implicit: l.implicit, info: make(map[*sptree.Node]span)}
	d.scan(canon)
	tree, err := d.derive(c.child, canon)
	if err != nil {
		return err
	}
	c.tree = tree
	c.dirty = false
	l.derived++
	return nil
}

// Sync opportunistically derives every dirty component whose subgraph
// currently forms a flow network. Components that are not yet
// derivable stay dirty; that is the normal mid-run state and is not an
// error. It returns how many components currently hold a subtree.
func (l *Live) Sync() int {
	have := 0
	for i := range l.comps {
		c := &l.comps[i]
		if c.dirty && c.ready() {
			if err := l.syncComponent(c); err != nil {
				// Not yet derivable (e.g. a fork branch still open);
				// keep the component dirty and try again later.
				_ = err
			}
		}
		if c.tree != nil && !c.dirty {
			have++
		}
	}
	return have
}

// Complete finishes the run: every component must be derivable, clean
// cached subtrees are reused as-is, and the assembled tree is
// validated against the specification exactly like a from-scratch
// derivation. The returned Run's graph holds nodes in event arrival
// order and edges in canonical document order, so encoding it and
// re-parsing the XML reproduces the same run byte-for-byte.
func (l *Live) Complete() (*Run, error) {
	if l.done {
		return nil, fmt.Errorf("wfrun: run already completed")
	}
	if l.events == 0 {
		return nil, fmt.Errorf("wfrun: cannot complete an empty run")
	}
	for i := range l.comps {
		c := &l.comps[i]
		if c.tree != nil && !c.dirty {
			l.reused++
			continue
		}
		if len(c.edges) == 0 {
			return nil, fmt.Errorf("wfrun: specification region %s..%s was never executed", c.child.Src, c.child.Dst)
		}
		if err := l.syncComponent(c); err != nil {
			return nil, err
		}
	}

	// Canonical full graph: nodes in arrival order, edges in document
	// order — identical to what DecodeRun builds from the encoded XML.
	g := graph.New()
	for _, id := range l.nodeOrder {
		g.MustAddNode(id, l.labels[id])
	}
	var all []liveEdge
	for i := range l.comps {
		all = append(all, l.comps[i].edges...)
	}
	var implicitEdges []graph.Edge
	for _, le := range sortedEdges(all) {
		e := g.MustAddEdge(le.e.From, le.e.To)
		if le.implicit {
			implicitEdges = append(implicitEdges, e)
		}
	}
	if _, _, err := g.CheckFlowNetwork(); err != nil {
		return nil, fmt.Errorf("wfrun: %w", err)
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("wfrun: run graph has a cycle")
	}
	if err := checkHomomorphism(g, l.sp); err != nil {
		return nil, err
	}

	var root *sptree.Node
	if l.sp.Tree.Type == sptree.S {
		root = &sptree.Node{Type: sptree.S, Spec: l.sp.Tree, Src: l.sp.Tree.Src, Dst: l.sp.Tree.Dst}
		for i := range l.comps {
			root.Adopt(l.comps[i].tree)
		}
	} else {
		root = l.comps[0].tree
	}
	root.Finalize()
	if err := sptree.ValidateRunTree(root, l.sp.Tree); err != nil {
		return nil, fmt.Errorf("wfrun: derived tree is invalid: %w", err)
	}
	l.done = true
	return &Run{Spec: l.sp, Tree: root, Graph: g, ImplicitEdges: implicitEdges}, nil
}

// Events flattens a completed run back into its event stream, in the
// run graph's edge order. Replaying the result through a fresh Live
// reconstructs an equivalent run; this is the bridge between stored
// runs and the streaming ingest path (tests, load generation, drift
// baselines).
func Events(r *Run) []Event {
	refs := r.EdgeRefs()
	implicit := make(map[graph.Edge]bool, len(r.ImplicitEdges))
	for _, e := range r.ImplicitEdges {
		implicit[e] = true
	}
	out := make([]Event, 0, len(r.Graph.Edges()))
	for _, e := range r.Graph.Edges() {
		ev := Event{
			From:      string(e.From),
			To:        string(e.To),
			FromLabel: r.Graph.Label(e.From),
			ToLabel:   r.Graph.Label(e.To),
		}
		if implicit[e] {
			ev.Implicit = true
		} else if ref, ok := refs[e]; ok {
			ev.SpecFrom = string(ref.From)
			ev.SpecTo = string(ref.To)
			ev.SpecKey = ref.Key
		}
		out = append(out, ev)
	}
	return out
}
