package wfrun

import (
	"math/rand"
	"testing"

	"repro/internal/sptree"
)

// TestDeriveRobustAgainstCorruption mutates valid run graphs at random
// (dropping edges, dropping nodes, adding label-respecting edges) and
// feeds them to Derive. The requirement is totality: Derive must
// either reject the graph with an error or return a run that passes
// full validation — never panic and never accept an invalid run.
func TestDeriveRobustAgainstCorruption(t *testing.T) {
	sp := testSpec(t, true)
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 300; trial++ {
		r, err := Execute(sp, &randDecider{rng: rng, maxCopies: 3, maxIter: 3})
		if err != nil {
			t.Fatal(err)
		}
		g := r.Graph.Clone()
		mutations := 1 + rng.Intn(3)
		for m := 0; m < mutations; m++ {
			switch rng.Intn(3) {
			case 0: // drop a random edge
				es := g.Edges()
				if len(es) > 0 {
					g.RemoveEdge(es[rng.Intn(len(es))])
				}
			case 1: // drop a random node with its edges
				ns := g.Nodes()
				if len(ns) > 0 {
					g.RemoveNode(ns[rng.Intn(len(ns))])
				}
			case 2: // add an edge between random existing nodes
				ns := g.Nodes()
				if len(ns) >= 2 {
					a := ns[rng.Intn(len(ns))]
					b := ns[rng.Intn(len(ns))]
					if a != b {
						g.MustAddEdge(a, b)
					}
				}
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Derive panicked on corrupted graph: %v\n%s", trial, p, g)
				}
			}()
			got, err := Derive(sp, g, nil)
			if err != nil {
				return // rejected: fine
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("trial %d: Derive accepted an invalid run: %v\n%s", trial, verr, g)
			}
		}()
	}
}

// TestExecutePanicsNever drives Execute with adversarial deciders that
// return out-of-range values; Execute must return errors, not panic.
func TestExecutePanicsNever(t *testing.T) {
	sp := testSpec(t, true)
	// Out-of-range parallel subset.
	bad := deciderFuncs{
		par:  func(p int) []int { return []int{99} },
		fork: func() int { return 1 },
		loop: func() int { return 1 },
	}
	if _, err := Execute(sp, bad); err == nil {
		t.Fatal("out-of-range subset must error")
	}
	// Negative fork copies.
	bad2 := deciderFuncs{
		par:  func(p int) []int { return []int{0} },
		fork: func() int { return -1 },
		loop: func() int { return 1 },
	}
	if _, err := Execute(sp, bad2); err == nil {
		t.Fatal("negative copies must error")
	}
	// Zero loop iterations.
	bad3 := deciderFuncs{
		par:  func(p int) []int { return []int{0} },
		fork: func() int { return 1 },
		loop: func() int { return 0 },
	}
	if _, err := Execute(sp, bad3); err == nil {
		t.Fatal("zero iterations must error")
	}
}

type deciderFuncs struct {
	par  func(nChildren int) []int
	fork func() int
	loop func() int
}

func (d deciderFuncs) ParallelSubset(p *sptree.Node) []int { return d.par(len(p.Children)) }
func (d deciderFuncs) ForkCopies(*sptree.Node) int         { return d.fork() }
func (d deciderFuncs) LoopIterations(*sptree.Node) int     { return d.loop() }
