package wfrun

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// testSpec builds the Fig. 2 specification with forks and (optionally)
// the loop over the middle block.
func testSpec(t *testing.T, withLoop bool) *spec.Spec {
	t.Helper()
	g := graph.New()
	for i := 1; i <= 7; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	for _, e := range [][2]string{
		{"1", "2"}, {"2", "3"}, {"3", "6"}, {"2", "4"}, {"4", "6"},
		{"2", "5"}, {"5", "6"}, {"6", "7"},
	} {
		g.MustAddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	es := func(pairs ...[2]string) spec.EdgeSet {
		var out spec.EdgeSet
		for _, p := range pairs {
			out = append(out, graph.Edge{From: graph.NodeID(p[0]), To: graph.NodeID(p[1])})
		}
		return out
	}
	forks := []spec.EdgeSet{
		es([2]string{"2", "3"}, [2]string{"3", "6"}),
		es([2]string{"2", "4"}, [2]string{"4", "6"}),
		es([2]string{"2", "5"}, [2]string{"5", "6"}),
	}
	var loops []spec.EdgeSet
	if withLoop {
		loops = []spec.EdgeSet{es([2]string{"2", "3"}, [2]string{"3", "6"},
			[2]string{"2", "4"}, [2]string{"4", "6"},
			[2]string{"2", "5"}, [2]string{"5", "6"})}
	}
	sp, err := spec.New(g, forks, loops)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// scriptedDecider drives Execute with fixed choices per specification
// node type, cycling through the provided sequences.
type scriptedDecider struct {
	subsets map[*sptree.Node][][]int
	copies  map[*sptree.Node][]int
	iters   map[*sptree.Node][]int
}

func (d *scriptedDecider) pop(m map[*sptree.Node][]int, n *sptree.Node, def int) int {
	if vs := m[n]; len(vs) > 0 {
		v := vs[0]
		m[n] = vs[1:]
		return v
	}
	return def
}

func (d *scriptedDecider) ParallelSubset(p *sptree.Node) []int {
	if vs := d.subsets[p]; len(vs) > 0 {
		v := vs[0]
		d.subsets[p] = vs[1:]
		return v
	}
	all := make([]int, len(p.Children))
	for i := range all {
		all[i] = i
	}
	return all
}
func (d *scriptedDecider) ForkCopies(f *sptree.Node) int     { return d.pop(d.copies, f, 1) }
func (d *scriptedDecider) LoopIterations(l *sptree.Node) int { return d.pop(d.iters, l, 1) }

func TestExecuteFullDecider(t *testing.T) {
	sp := testSpec(t, false)
	r, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// All three branches once: 8 edges, no implicit edges.
	if r.NumEdges() != 8 {
		t.Fatalf("NumEdges = %d, want 8", r.NumEdges())
	}
	if len(r.ImplicitEdges) != 0 {
		t.Fatalf("unexpected implicit edges: %v", r.ImplicitEdges)
	}
	if r.Tree.CountLeaves() != 8 {
		t.Fatalf("tree leaves = %d, want 8", r.Tree.CountLeaves())
	}
}

func TestExecuteWithLoopIterations(t *testing.T) {
	sp := testSpec(t, true)
	var loopNode *sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.L {
			loopNode = n
		}
		return true
	})
	d := &scriptedDecider{
		subsets: map[*sptree.Node][][]int{},
		copies:  map[*sptree.Node][]int{},
		iters:   map[*sptree.Node][]int{loopNode: {3}},
	}
	r, err := Execute(sp, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(r.ImplicitEdges) != 2 {
		t.Fatalf("implicit edges = %d, want 2 (three iterations)", len(r.ImplicitEdges))
	}
	// Implicit edges run from a node labeled 6 to a node labeled 2.
	for _, e := range r.ImplicitEdges {
		if r.Graph.Label(e.From) != "6" || r.Graph.Label(e.To) != "2" {
			t.Fatalf("implicit edge %s has labels (%s,%s)", e, r.Graph.Label(e.From), r.Graph.Label(e.To))
		}
	}
	// 3 iterations * 6 middle edges + 2 outer edges + 2 implicit.
	if r.NumEdges() != 3*6+2+2 {
		t.Fatalf("NumEdges = %d, want 22", r.NumEdges())
	}
	// The loop node in the run tree has three ordered iterations.
	var runLoop *sptree.Node
	r.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.L {
			runLoop = n
		}
		return true
	})
	if runLoop == nil || len(runLoop.Children) != 3 {
		t.Fatalf("run loop iterations wrong:\n%s", r.Tree)
	}
}

func TestExecuteForkCopiesShareTerminals(t *testing.T) {
	sp := testSpec(t, false)
	var fork236 *sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type != sptree.F || fork236 != nil {
			return true
		}
		for _, leaf := range n.Leaves() {
			if leaf.Edge.From == "2" && leaf.Edge.To == "3" {
				fork236 = n
			}
		}
		return true
	})
	d := &scriptedDecider{
		subsets: map[*sptree.Node][][]int{},
		copies:  map[*sptree.Node][]int{fork236: {3}},
		iters:   map[*sptree.Node][]int{},
	}
	r, err := Execute(sp, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// One label-2 instance and one label-6 instance despite 3 copies.
	count := map[string]int{}
	for _, n := range r.Graph.Nodes() {
		count[r.Graph.Label(n)]++
	}
	if count["2"] != 1 || count["6"] != 1 {
		t.Fatalf("fork copies must share terminals: %v", count)
	}
	if count["3"] != 3 {
		t.Fatalf("expected 3 copies of module 3, got %d", count["3"])
	}
}

func TestDeciderErrors(t *testing.T) {
	sp := testSpec(t, false)
	var pnode *sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.P && pnode == nil {
			pnode = n
		}
		return true
	})
	bad := &scriptedDecider{
		subsets: map[*sptree.Node][][]int{pnode: {{}}},
		copies:  map[*sptree.Node][]int{},
		iters:   map[*sptree.Node][]int{},
	}
	if _, err := Execute(sp, bad); err == nil {
		t.Fatal("empty parallel subset must be rejected")
	}
	bad2 := &scriptedDecider{
		subsets: map[*sptree.Node][][]int{pnode: {{0, 0}}},
		copies:  map[*sptree.Node][]int{},
		iters:   map[*sptree.Node][]int{},
	}
	if _, err := Execute(sp, bad2); err == nil {
		t.Fatal("duplicate parallel indices must be rejected")
	}
}

// randDecider makes random valid choices.
type randDecider struct {
	rng                *rand.Rand
	maxCopies, maxIter int
}

func (d *randDecider) ParallelSubset(p *sptree.Node) []int {
	var subset []int
	for i := range p.Children {
		if d.rng.Intn(100) < 70 {
			subset = append(subset, i)
		}
	}
	if len(subset) == 0 {
		subset = []int{d.rng.Intn(len(p.Children))}
	}
	return subset
}
func (d *randDecider) ForkCopies(*sptree.Node) int     { return 1 + d.rng.Intn(d.maxCopies) }
func (d *randDecider) LoopIterations(*sptree.Node) int { return 1 + d.rng.Intn(d.maxIter) }

func TestDeriveRoundTripRandom(t *testing.T) {
	// For randomly executed runs, Derive(materialized graph) must
	// produce a valid annotated tree over the same graph. (The tree
	// need not be identical — a bare graph does not always determine
	// the fork structure — but it must be a valid run tree whose
	// leaves are exactly the non-implicit run edges.)
	for _, withLoop := range []bool{false, true} {
		sp := testSpec(t, withLoop)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 40; trial++ {
			r, err := Execute(sp, &randDecider{rng: rng, maxCopies: 3, maxIter: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			r2, err := Derive(sp, r.Graph, nil)
			if err != nil {
				t.Fatalf("trial %d (loop=%v): derive failed: %v\ngraph: %s\ntree:\n%s",
					trial, withLoop, err, r.Graph, r.Tree)
			}
			if err := r2.Validate(); err != nil {
				t.Fatalf("trial %d: derived run invalid: %v", trial, err)
			}
			// Leaf edges of the derived tree = non-implicit edges.
			wantLeaves := r.Graph.NumEdges() - len(r2.ImplicitEdges)
			if got := r2.Tree.CountLeaves(); got != wantLeaves {
				t.Fatalf("trial %d: derived tree has %d leaves, want %d", trial, got, wantLeaves)
			}
			if len(r2.ImplicitEdges) != len(r.ImplicitEdges) {
				t.Fatalf("trial %d: implicit edge count %d, want %d",
					trial, len(r2.ImplicitEdges), len(r.ImplicitEdges))
			}
		}
	}
}

func TestDeriveRejectsForeignGraph(t *testing.T) {
	sp := testSpec(t, false)
	g := graph.New()
	g.MustAddNode("xa", "x")
	g.MustAddNode("ya", "y")
	g.MustAddEdge("xa", "ya")
	if _, err := Derive(sp, g, nil); err == nil {
		t.Fatal("foreign graph must be rejected")
	}
}

func TestDeriveRejectsPartialRun(t *testing.T) {
	sp := testSpec(t, false)
	// Missing the (6,7) tail: node 6a is a second sink.
	g := graph.New()
	for _, n := range []struct{ id, label string }{
		{"1a", "1"}, {"2a", "2"}, {"3a", "3"}, {"6a", "6"},
	} {
		g.MustAddNode(graph.NodeID(n.id), n.label)
	}
	g.MustAddEdge("1a", "2a")
	g.MustAddEdge("2a", "3a")
	g.MustAddEdge("3a", "6a")
	if _, err := Derive(sp, g, nil); err == nil {
		t.Fatal("truncated run must be rejected")
	}
}

func TestDeriveAmbiguousMultigraphNeedsRefs(t *testing.T) {
	g := graph.New()
	g.MustAddNode("s", "s")
	g.MustAddNode("t", "t")
	e0 := g.MustAddEdge("s", "t")
	g.MustAddEdge("s", "t")
	sp, err := spec.New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := graph.New()
	run.MustAddNode("sa", "s")
	run.MustAddNode("ta", "t")
	re0 := run.MustAddEdge("sa", "ta")
	re1 := run.MustAddEdge("sa", "ta")
	if _, err := Derive(sp, run, nil); err == nil {
		t.Fatal("ambiguous parallel edges must require references")
	}
	refs := map[graph.Edge]graph.Edge{
		re0: e0,
		re1: {From: "s", To: "t", Key: 1},
	}
	r, err := Derive(sp, run, refs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tree.CountLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2", r.Tree.CountLeaves())
	}
}

func TestNamer(t *testing.T) {
	nm := newNamer()
	if id := nm.next("3"); id != "3a" {
		t.Fatalf("first instance = %s, want 3a", id)
	}
	if id := nm.next("3"); id != "3b" {
		t.Fatalf("second instance = %s, want 3b", id)
	}
	for i := 0; i < 24; i++ {
		nm.next("3")
	}
	if id := nm.next("3"); id != "3a1" {
		t.Fatalf("27th instance = %s, want 3a1", id)
	}
}

func TestExecuteDeterministicForFullDecider(t *testing.T) {
	sp := testSpec(t, true)
	a, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree.Signature() != b.Tree.Signature() {
		t.Fatal("Execute not deterministic under FullDecider")
	}
	if a.Graph.String() != b.Graph.String() {
		t.Fatal("materialization not deterministic")
	}
}
