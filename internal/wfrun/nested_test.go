package wfrun

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// nestedSpec builds a specification with a loop nested inside a fork:
// chain 1->2, forked region 2..7 containing an inner loop over the
// parallel block 3..6, then 7->8.
//
//	1 -> 2 -> 3 -> {4 | 5} -> 6 -> 7 -> 8
//	          \____loop____/
//	     \_________fork________/
func nestedSpec(t *testing.T) *spec.Spec {
	t.Helper()
	g := graph.New()
	for i := 1; i <= 8; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	var e23, e34, e46, e35, e56, e67 graph.Edge
	e12 := g.MustAddEdge("1", "2")
	e23 = g.MustAddEdge("2", "3")
	e34 = g.MustAddEdge("3", "4")
	e46 = g.MustAddEdge("4", "6")
	e35 = g.MustAddEdge("3", "5")
	e56 = g.MustAddEdge("5", "6")
	e67 = g.MustAddEdge("6", "7")
	g.MustAddEdge("7", "8")
	_ = e12
	loops := []spec.EdgeSet{{e34, e46, e35, e56}}           // loop over 3..6
	forks := []spec.EdgeSet{{e23, e34, e46, e35, e56, e67}} // fork over 2..7
	sp, err := spec.New(g, forks, loops)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// nestedDecider replicates the outer fork `copies` times; within copy
// i the inner loop runs iters[i] times; every branch is taken.
type nestedDecider struct {
	iters []int
	call  int
}

func (d *nestedDecider) ParallelSubset(p *sptree.Node) []int {
	all := make([]int, len(p.Children))
	for i := range all {
		all[i] = i
	}
	return all
}
func (d *nestedDecider) ForkCopies(*sptree.Node) int { return len(d.iters) }
func (d *nestedDecider) LoopIterations(*sptree.Node) int {
	n := d.iters[d.call%len(d.iters)]
	d.call++
	return n
}

func TestLoopNestedInFork(t *testing.T) {
	sp := nestedSpec(t)
	// Structure check: F wraps a subtree containing an L.
	var fnode *sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.F {
			fnode = n
		}
		return true
	})
	if fnode == nil {
		t.Fatalf("no fork node:\n%s", sp.Tree)
	}
	hasLoop := false
	fnode.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.L {
			hasLoop = true
		}
		return true
	})
	if !hasLoop {
		t.Fatalf("loop not nested inside fork:\n%s", sp.Tree)
	}

	// Two fork copies with 2 and 3 inner iterations.
	r, err := Execute(sp, &nestedDecider{iters: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges: per copy i: (2,3) + iters*4 + (iters-1 implicit) + (6,7),
	// plus outer (1,2) and (7,8).
	want := 2 + (1 + 2*4 + 1 + 1) + (1 + 3*4 + 2 + 1)
	if r.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d\n%s", r.NumEdges(), want, r.Graph)
	}
	if len(r.ImplicitEdges) != 3 {
		t.Fatalf("implicit edges = %d, want 3", len(r.ImplicitEdges))
	}

	// Round-trip the graph through f″.
	r2, err := Derive(sp, r.Graph, nil)
	if err != nil {
		t.Fatalf("derive failed: %v\n%s", err, r.Graph)
	}
	if err := r2.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sptree.EquivalentRuns(r.Tree, r2.Tree) {
		// The fork copies here are distinguishable by iteration count,
		// so f″ must reconstruct the identical structure.
		t.Fatalf("derived tree differs:\n%s\nvs\n%s", r.Tree, r2.Tree)
	}
}

func TestForkNestedInLoop(t *testing.T) {
	// The dual nesting: a fork inside a loop body.
	g := graph.New()
	for i := 1; i <= 6; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	e12 := g.MustAddEdge("1", "2")
	e23 := g.MustAddEdge("2", "3")
	e34 := g.MustAddEdge("3", "4")
	e45 := g.MustAddEdge("4", "5")
	g.MustAddEdge("5", "6")
	_ = e12
	forks := []spec.EdgeSet{{e34}}           // fork over the single edge (3,4)
	loops := []spec.EdgeSet{{e23, e34, e45}} // loop over 2..5
	sp, err := spec.New(g, forks, loops)
	if err != nil {
		t.Fatal(err)
	}
	d := &nestedDecider{iters: []int{2}}
	r, err := Execute(sp, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 iterations, each (2,3)+(3,4)+(4,5) with one fork copy, plus
	// one implicit edge and the outer edges.
	if r.NumEdges() != 2+2*3+1 {
		t.Fatalf("NumEdges = %d, want 9", r.NumEdges())
	}
	r2, err := Derive(sp, r.Graph, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sptree.EquivalentRuns(r.Tree, r2.Tree) {
		t.Fatalf("derived tree differs:\n%s\nvs\n%s", r.Tree, r2.Tree)
	}
}
