package wfrun_test

// Live derivation is checked differentially: replaying a completed
// run's event stream through Live must reproduce, byte for byte (via
// the snapshot codec), the run a from-scratch parse of its XML
// produces — in arrival order and under arbitrary shuffles, with
// periodic mid-stream Syncs thrown in.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// canonical encodes a run to XML and re-parses it, yielding the
// document-order run every other ingest path produces.
func canonical(t *testing.T, r *wfrun.Run, sp *spec.Spec) *wfrun.Run {
	t.Helper()
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, "r"); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := wfxml.DecodeRun(&buf, sp)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// sameRun compares two runs exactly up to graph node-insertion order
// (which an event stream has no way, and no need, to reproduce): same
// derived tree over the same concrete edges, same labeled node set,
// same edge sequence in canonical order, same implicit edges.
func sameRun(a, b *wfrun.Run) error {
	if !sptree.Equivalent(a.Tree, b.Tree) {
		return fmt.Errorf("trees differ:\n%s\nvs\n%s", a.Tree, b.Tree)
	}
	an, bn := a.Graph.Nodes(), b.Graph.Nodes()
	if len(an) != len(bn) {
		return fmt.Errorf("node counts differ: %d vs %d", len(an), len(bn))
	}
	for _, n := range an {
		if a.Graph.Label(n) != b.Graph.Label(n) {
			return fmt.Errorf("node %s labels differ", n)
		}
	}
	ae, be := a.Graph.Edges(), b.Graph.Edges()
	sortEdges := func(es []graph.Edge) {
		sort.Slice(es, func(i, j int) bool {
			if es[i].From != es[j].From {
				return es[i].From < es[j].From
			}
			if es[i].To != es[j].To {
				return es[i].To < es[j].To
			}
			return es[i].Key < es[j].Key
		})
	}
	sortEdges(ae)
	sortEdges(be)
	if fmt.Sprint(ae) != fmt.Sprint(be) {
		return fmt.Errorf("edges differ: %v vs %v", ae, be)
	}
	ai := append([]graph.Edge(nil), a.ImplicitEdges...)
	bi := append([]graph.Edge(nil), b.ImplicitEdges...)
	sortEdges(ai)
	sortEdges(bi)
	if fmt.Sprint(ai) != fmt.Sprint(bi) {
		return fmt.Errorf("implicit edges differ: %v vs %v", ai, bi)
	}
	return nil
}

func frame(t *testing.T, r *wfrun.Run) []byte {
	t.Helper()
	b, err := codec.EncodeRun(r)
	if err != nil {
		t.Fatalf("codec: %v", err)
	}
	return b
}

func TestLiveMatchesFullDerivation(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 6 + rng.Intn(14), SeriesRatio: 1.5, Forks: 2, Loops: 2}, rng)
		if err != nil {
			t.Fatalf("seed %d: spec: %v", seed, err)
		}
		run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		want := canonical(t, run, sp)
		evs := wfrun.Events(run)

		for pass := 0; pass < 2; pass++ {
			order := make([]int, len(evs))
			for i := range order {
				order[i] = i
			}
			if pass == 1 {
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			lv := wfrun.NewLive(sp)
			for i, idx := range order {
				if err := lv.Append(evs[idx]); err != nil {
					t.Fatalf("seed %d pass %d: append %d: %v", seed, pass, i, err)
				}
				if i%5 == 4 {
					lv.Sync()
				}
			}
			got, err := lv.Complete()
			if err != nil {
				t.Fatalf("seed %d pass %d: complete: %v", seed, pass, err)
			}
			if pass == 0 {
				// Arrival order: the exact run, edge for edge.
				if err := sameRun(got, want); err != nil {
					t.Fatalf("seed %d: live-derived run differs from full derivation: %v", seed, err)
				}
			} else {
				// Shuffled: parallel run edges are only identified by
				// arrival order, so their keys (and the key↔spec-ref
				// association) may permute; the runs must still be
				// label-equivalent, and the live result must survive
				// its own round trip exactly.
				if !sptree.EquivalentRuns(got.Tree, want.Tree) {
					t.Fatalf("seed %d shuffled: run not label-equivalent to full derivation:\n%s\nvs\n%s", seed, got.Tree, want.Tree)
				}
				if err := sameRun(got, canonical(t, got, sp)); err != nil {
					t.Fatalf("seed %d shuffled: round trip not stable: %v", seed, err)
				}
			}
		}
	}
}

// chainSpec builds a→b→c→d: an S-rooted spec with three independent
// components.
func chainSpec(t *testing.T) *spec.Spec {
	t.Helper()
	g := graph.New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(graph.NodeID(id), id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("c", "d")
	sp, err := spec.New(g, nil, nil)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	return sp
}

func ev(from, to string) wfrun.Event {
	return wfrun.Event{From: from + "0", To: to + "0", FromLabel: from, ToLabel: to}
}

func TestLiveOnlyRederivesDirtyComponents(t *testing.T) {
	sp := chainSpec(t)
	lv := wfrun.NewLive(sp)
	for _, e := range []wfrun.Event{ev("a", "b"), ev("b", "c")} {
		if err := lv.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	lv.Sync()
	if d, _ := lv.Derivations(); d != 2 {
		t.Fatalf("after first sync derived = %d, want 2", d)
	}
	// Nothing dirty: a second sync derives nothing.
	lv.Sync()
	if d, _ := lv.Derivations(); d != 2 {
		t.Fatalf("idempotent sync derived = %d, want 2", d)
	}
	if err := lv.Append(ev("c", "d")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := lv.Complete(); err != nil {
		t.Fatalf("complete: %v", err)
	}
	// Only the third component was derived at completion; the two
	// cached subtrees were adopted untouched.
	if d, r := lv.Derivations(); d != 3 || r != 2 {
		t.Fatalf("derivations = (%d derived, %d reused), want (3, 2)", d, r)
	}
}

func TestLiveCountsAndErrors(t *testing.T) {
	sp := chainSpec(t)
	lv := wfrun.NewLive(sp)
	if err := lv.Append(wfrun.Event{From: "x", To: "y"}); err == nil {
		t.Fatal("expected error for unlabeled new nodes")
	}
	if err := lv.Append(wfrun.Event{From: "a0", To: "b0", FromLabel: "a", ToLabel: "nope"}); err == nil {
		t.Fatal("expected error for a label with no specification image")
	}
	if err := lv.Append(ev("a", "b")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := lv.Append(wfrun.Event{From: "a0", To: "c0", FromLabel: "b", ToLabel: "c"}); err == nil {
		t.Fatal("expected error for a conflicting node label")
	}
	if got := lv.Counts(); got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("counts = %v, want [1 0 0]", got)
	}
	if _, err := lv.Complete(); err == nil {
		t.Fatal("expected completion to fail with unexecuted regions")
	}
}

func TestLiveCompleteIsTerminal(t *testing.T) {
	sp := chainSpec(t)
	lv := wfrun.NewLive(sp)
	for _, e := range []wfrun.Event{ev("a", "b"), ev("b", "c"), ev("c", "d")} {
		if err := lv.Append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	run, err := lv.Complete()
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("completed run invalid: %v", err)
	}
	if err := lv.Append(ev("a", "b")); err == nil {
		t.Fatal("expected append after completion to fail")
	}
	if _, err := lv.Complete(); err == nil {
		t.Fatal("expected second completion to fail")
	}
}

func TestLiveEventRoundTripThroughXML(t *testing.T) {
	// A live-completed run encodes to XML that decodes back to the
	// same frame — the invariant the store's completion path relies on.
	rng := rand.New(rand.NewSource(7))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 12, SeriesRatio: 1.5, Forks: 2, Loops: 2}, rng)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lv := wfrun.NewLive(sp)
	for i, e := range wfrun.Events(run) {
		if err := lv.Append(e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := lv.Complete()
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if !bytes.Equal(frame(t, got), frame(t, canonical(t, got, sp))) {
		t.Fatal("live-completed run does not survive an XML round trip")
	}
}

func TestLiveAcceptsLabeledSpecs(t *testing.T) {
	// Regression: resolve() once compared event node labels against
	// specification node IDs, which only agreed on specs whose modules
	// are labeled by their own identifiers. The protein annotation
	// workflow labels modules by task name ("getProteinSeq", ...), so
	// every spec-referenced event was rejected.
	sp, err := gen.ProteinAnnotation()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lv := wfrun.NewLive(sp)
	for i, e := range wfrun.Events(run) {
		if err := lv.Append(e); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := lv.Complete()
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := sameRun(got, canonical(t, run, sp)); err != nil {
		t.Fatalf("live-derived run differs from full derivation: %v", err)
	}
}
