package wfrun

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// Derive implements the deterministic tree execution function f″ of
// Algorithms 2 and 5: given the specification and a run supplied as a
// bare graph, it computes the annotated SP-tree of the run. The run
// graph must be an acyclic SP flow network admitting the label
// homomorphism into the specification (extended with loop back edges).
//
// For specifications whose graph has parallel edges between the same
// pair of labels, edgeRef must map each run edge to its specification
// edge; otherwise it may be nil and the mapping is inferred from
// labels.
//
// Note that a bare graph does not always determine the fork structure
// uniquely (two fork copies taking complementary parallel branches
// yield the same graph as one copy taking both); f″ resolves the
// ambiguity canonically by assigning each parallel component its own
// fork copy, exactly as Algorithm 2 prescribes.
func Derive(sp *spec.Spec, g *graph.Graph, edgeRef map[graph.Edge]graph.Edge) (*Run, error) {
	if _, _, err := g.CheckFlowNetwork(); err != nil {
		return nil, fmt.Errorf("wfrun: %w", err)
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("wfrun: run graph has a cycle")
	}
	if err := checkHomomorphism(g, sp); err != nil {
		return nil, err
	}
	d := &deriver{sp: sp, g: g, specOf: make(map[graph.Edge]graph.Edge), implicit: make(map[graph.Edge]bool)}
	if err := d.classifyEdges(edgeRef); err != nil {
		return nil, err
	}
	canon, err := decomposeRunGraph(g)
	if err != nil {
		return nil, fmt.Errorf("wfrun: run graph is not series-parallel: %w", err)
	}
	d.info = make(map[*sptree.Node]span)
	d.scan(canon)
	root, err := d.derive(sp.Tree, canon)
	if err != nil {
		return nil, err
	}
	root.Finalize()
	if err := sptree.ValidateRunTree(root, sp.Tree); err != nil {
		return nil, fmt.Errorf("wfrun: derived tree is invalid: %w", err)
	}
	run := &Run{Spec: sp, Tree: root, Graph: g}
	// Graph insertion order, not map order: ImplicitEdges feeds the
	// snapshot codec, so two parses of the same document must list the
	// implicit edges identically for frames to be byte-stable.
	for _, e := range g.Edges() {
		if d.implicit[e] {
			run.ImplicitEdges = append(run.ImplicitEdges, e)
		}
	}
	return run, nil
}

// decomposeRunGraph is a seam for spgraph.Decompose, split out for
// testability.
func decomposeRunGraph(g *graph.Graph) (*sptree.Node, error) {
	return decomposeFn(g)
}

type deriver struct {
	sp       *spec.Spec
	g        *graph.Graph
	specOf   map[graph.Edge]graph.Edge // run edge -> specification edge
	implicit map[graph.Edge]bool       // run edges that are loop back edges
	info     map[*sptree.Node]span
}

// span summarizes the specification leaf indices covered by the real
// (non-implicit) edges below a canonical run-tree node.
type span struct {
	lo, hi  int // half-open; valid only if hasReal
	hasReal bool
}

// classifyEdges resolves every run edge to a specification edge or
// marks it implicit.
func (d *deriver) classifyEdges(edgeRef map[graph.Edge]graph.Edge) error {
	byLabels := make(map[[2]string][]graph.Edge)
	for _, e := range d.sp.G.Edges() {
		k := [2]string{d.sp.G.Label(e.From), d.sp.G.Label(e.To)}
		byLabels[k] = append(byLabels[k], e)
	}
	implicitPairs := make(map[[2]string]bool)
	d.sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.L {
			implicitPairs[[2]string{n.Dst, n.Src}] = true
		}
		return true
	})
	for _, e := range d.g.Edges() {
		k := [2]string{d.g.Label(e.From), d.g.Label(e.To)}
		if ref, ok := edgeRef[e]; ok {
			if _, valid := d.sp.LeafIndex(ref); !valid {
				return fmt.Errorf("wfrun: edge reference %s -> %s names an unknown specification edge", e, ref)
			}
			d.specOf[e] = ref
			continue
		}
		cands := byLabels[k]
		switch {
		case len(cands) == 1:
			d.specOf[e] = cands[0]
		case len(cands) > 1:
			return fmt.Errorf("wfrun: run edge %s is ambiguous (parallel specification edges between %s and %s); supply an edge reference", e, k[0], k[1])
		case implicitPairs[k]:
			d.implicit[e] = true
		default:
			return fmt.Errorf("wfrun: run edge %s has no specification image (%s,%s)", e, k[0], k[1])
		}
	}
	return nil
}

// scan computes span info bottom-up over the canonical run tree.
func (d *deriver) scan(n *sptree.Node) span {
	var s span
	if n.Type == sptree.Q {
		if d.implicit[n.Edge] {
			d.info[n] = s
			return s
		}
		i, ok := d.sp.LeafIndex(d.specOf[n.Edge])
		if !ok {
			// classifyEdges guarantees this cannot happen.
			panic(fmt.Sprintf("wfrun: unclassified run edge %s", n.Edge))
		}
		s = span{lo: i, hi: i + 1, hasReal: true}
		d.info[n] = s
		return s
	}
	for _, c := range n.Children {
		cs := d.scan(c)
		if !cs.hasReal {
			continue
		}
		if !s.hasReal {
			s = cs
			continue
		}
		if cs.lo < s.lo {
			s.lo = cs.lo
		}
		if cs.hi > s.hi {
			s.hi = cs.hi
		}
	}
	d.info[n] = s
	return s
}

// bundle packs a nonempty group of canonical children into a single
// canonical node of the given type, reusing the sole element when the
// group is a singleton.
func (d *deriver) bundle(t sptree.Type, group []*sptree.Node) *sptree.Node {
	if len(group) == 1 {
		return group[0]
	}
	n := sptree.NewInternal(t, group...)
	s := span{}
	for _, c := range group {
		cs := d.info[c]
		if !cs.hasReal {
			continue
		}
		if !s.hasReal {
			s = cs
			continue
		}
		if cs.lo < s.lo {
			s.lo = cs.lo
		}
		if cs.hi > s.hi {
			s.hi = cs.hi
		}
	}
	d.info[n] = s
	return n
}

// childFor returns the index of the unique specification child of tg
// whose leaf interval contains sp, or an error.
func (d *deriver) childFor(tg *sptree.Node, s span, what string) (int, error) {
	for i, c := range tg.Children {
		lo, hi := d.sp.Interval(c)
		if lo <= s.lo && s.hi <= hi {
			return i, nil
		}
	}
	return 0, fmt.Errorf("wfrun: %s spans specification leaves [%d,%d) not contained in any child of %s node", what, s.lo, s.hi, tg.Type)
}

func (d *deriver) derive(tg, tr *sptree.Node) (*sptree.Node, error) {
	switch tg.Type {
	case sptree.Q:
		if tr.Type != sptree.Q {
			return nil, fmt.Errorf("wfrun: expected a single edge for specification edge %s, found %s subtree", tg.Edge, tr.Type)
		}
		if d.specOf[tr.Edge] != tg.Edge {
			return nil, fmt.Errorf("wfrun: run edge %s does not instantiate specification edge %s", tr.Edge, tg.Edge)
		}
		n := sptree.NewQ(tr.Edge, tg.Src, tg.Dst)
		n.Spec = tg
		return n, nil

	case sptree.S:
		if tr.Type != sptree.S {
			return nil, fmt.Errorf("wfrun: series region %s..%s does not decompose as a series composition", tg.Src, tg.Dst)
		}
		groups := make([][]*sptree.Node, len(tg.Children))
		current := -1
		for _, c := range tr.Children {
			cs := d.info[c]
			if !cs.hasReal {
				// An implicit loop edge between iterations; both its
				// neighbors belong to the same (loop) group.
				if current < 0 {
					return nil, fmt.Errorf("wfrun: implicit loop edge at the start of a series region")
				}
				groups[current] = append(groups[current], c)
				continue
			}
			idx, err := d.childFor(tg, cs, "series component")
			if err != nil {
				return nil, err
			}
			if idx < current {
				return nil, fmt.Errorf("wfrun: series components appear out of specification order")
			}
			current = idx
			groups[idx] = append(groups[idx], c)
		}
		n := &sptree.Node{Type: sptree.S, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		for i, g := range groups {
			if len(g) == 0 {
				return nil, fmt.Errorf("wfrun: series child %d of %s..%s was not executed", i, tg.Src, tg.Dst)
			}
			child, err := d.derive(tg.Children[i], d.bundle(sptree.S, g))
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
		}
		return n, nil

	case sptree.P:
		if tr.Type == sptree.P {
			groups := make([][]*sptree.Node, len(tg.Children))
			for _, c := range tr.Children {
				cs := d.info[c]
				if !cs.hasReal {
					return nil, fmt.Errorf("wfrun: implicit loop edge cannot form a parallel branch")
				}
				idx, err := d.childFor(tg, cs, "parallel branch")
				if err != nil {
					return nil, err
				}
				groups[idx] = append(groups[idx], c)
			}
			n := &sptree.Node{Type: sptree.P, Spec: tg, Src: tg.Src, Dst: tg.Dst}
			for i, g := range groups {
				if len(g) == 0 {
					continue
				}
				child, err := d.derive(tg.Children[i], d.bundle(sptree.P, g))
				if err != nil {
					return nil, err
				}
				n.Adopt(child)
			}
			if len(n.Children) == 0 {
				return nil, fmt.Errorf("wfrun: parallel node %s..%s has no executed branch", tg.Src, tg.Dst)
			}
			return n, nil
		}
		// A single branch was taken (tr is S or Q).
		cs := d.info[tr]
		if !cs.hasReal {
			return nil, fmt.Errorf("wfrun: implicit loop edge cannot form a parallel branch")
		}
		idx, err := d.childFor(tg, cs, "parallel branch")
		if err != nil {
			return nil, err
		}
		child, err := d.derive(tg.Children[idx], tr)
		if err != nil {
			return nil, err
		}
		n := &sptree.Node{Type: sptree.P, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		n.Adopt(child)
		return n, nil

	case sptree.F:
		n := &sptree.Node{Type: sptree.F, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		if tr.Type == sptree.P {
			for _, c := range tr.Children {
				child, err := d.derive(tg.Children[0], c)
				if err != nil {
					return nil, err
				}
				n.Adopt(child)
			}
			return n, nil
		}
		child, err := d.derive(tg.Children[0], tr)
		if err != nil {
			return nil, err
		}
		n.Adopt(child)
		return n, nil

	case sptree.L:
		n := &sptree.Node{Type: sptree.L, Spec: tg, Src: tg.Src, Dst: tg.Dst}
		if tr.Type == sptree.S {
			// Algorithm 5: children equal to the implicit edge
			// (t(TG), s(TG)) separate consecutive iterations.
			var groups [][]*sptree.Node
			cur := []*sptree.Node{}
			for _, c := range tr.Children {
				if c.Type == sptree.Q && d.implicit[c.Edge] &&
					d.g.Label(c.Edge.From) == tg.Dst && d.g.Label(c.Edge.To) == tg.Src {
					groups = append(groups, cur)
					cur = []*sptree.Node{}
					continue
				}
				cur = append(cur, c)
			}
			groups = append(groups, cur)
			if len(groups) == 1 {
				// No separators: a single iteration whose body is
				// this whole series composition.
				child, err := d.derive(tg.Children[0], tr)
				if err != nil {
					return nil, err
				}
				n.Adopt(child)
				return n, nil
			}
			for i, g := range groups {
				if len(g) == 0 {
					return nil, fmt.Errorf("wfrun: loop %s..%s has an empty iteration %d", tg.Src, tg.Dst, i)
				}
				child, err := d.derive(tg.Children[0], d.bundle(sptree.S, g))
				if err != nil {
					return nil, err
				}
				n.Adopt(child)
			}
			return n, nil
		}
		// A single iteration whose body is parallel or a single edge.
		child, err := d.derive(tg.Children[0], tr)
		if err != nil {
			return nil, err
		}
		n.Adopt(child)
		return n, nil
	}
	return nil, fmt.Errorf("wfrun: unknown specification node type %s", tg.Type)
}
