package wfxml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/sptree"
)

func TestSpecRoundTrip(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, sp, "fig2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<specification") || !strings.Contains(out, "<loop>") {
		t.Fatalf("unexpected XML:\n%s", out)
	}
	sp2, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Stats() != sp.Stats() {
		t.Fatalf("round-trip stats %+v != %+v", sp2.Stats(), sp.Stats())
	}
	if !sptree.Equivalent(sp.Tree, sp2.Tree) {
		t.Fatal("round-trip changed the annotated tree")
	}
}

func TestSpecRoundTripCatalog(t *testing.T) {
	for _, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, sp, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp2, err := DecodeSpec(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sp2.Stats() != sp.Stats() {
			t.Fatalf("%s: stats changed in round trip", name)
		}
	}
}

func TestRunRoundTrip(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeRun(&buf, r, "test"); err != nil {
			t.Fatal(err)
		}
		r2, err := DecodeRun(&buf, sp)
		if err != nil {
			t.Fatalf("run %d: %v\n%s", i, err, r.Tree)
		}
		if err := ValidateRunTree(r2); err != nil {
			t.Fatal(err)
		}
		if r2.Graph.String() != r.Graph.String() {
			t.Fatalf("run %d: graph changed in round trip", i)
		}
		if len(r2.ImplicitEdges) != len(r.ImplicitEdges) {
			t.Fatalf("run %d: implicit edges %d -> %d", i, len(r.ImplicitEdges), len(r2.ImplicitEdges))
		}
	}
}

func TestRunRoundTripMultigraphSpec(t *testing.T) {
	// PGAQ contains parallel specification edges; the XML must carry
	// the disambiguating references.
	sp, err := gen.Catalog("PGAQ")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeRun(&buf, r, "pgaq-run"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "specFrom=") {
		t.Fatal("run XML must carry specification edge references")
	}
	r2, err := DecodeRun(&buf, sp)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Graph.NumEdges() != r.Graph.NumEdges() {
		t.Fatal("edge count changed in round trip")
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	if _, err := DecodeSpec(strings.NewReader("not xml")); err == nil {
		t.Fatal("garbage must fail")
	}
	// Duplicate module id.
	bad := `<specification><module id="a" label="x"/><module id="a" label="y"/></specification>`
	if _, err := DecodeSpec(strings.NewReader(bad)); err == nil {
		t.Fatal("duplicate module must fail")
	}
	// Link with unknown endpoint.
	bad2 := `<specification><module id="a" label="x"/><link from="a" to="zzz"/></specification>`
	if _, err := DecodeSpec(strings.NewReader(bad2)); err == nil {
		t.Fatal("unknown endpoint must fail")
	}
}

func TestDecodeRunErrors(t *testing.T) {
	sp := fixtures.Fig2Spec()
	if _, err := DecodeRun(strings.NewReader("<run"), sp); err == nil {
		t.Fatal("truncated XML must fail")
	}
	// A structurally invalid run.
	bad := `<run><node id="1a" label="1"/><node id="3a" label="3"/><edge from="1a" to="3a"/></run>`
	if _, err := DecodeRun(strings.NewReader(bad), sp); err == nil {
		t.Fatal("invalid run must fail derivation")
	}
}
