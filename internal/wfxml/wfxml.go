// Package wfxml serializes SP-workflow specifications and runs as XML,
// mirroring the storage format of the PDiffView prototype
// (Section VIII: "specifications and runs are stored as XML files").
// Runs carry explicit specification-edge references so multigraph
// specifications round-trip unambiguously.
package wfxml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

type xmlEdge struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
	Key  int    `xml:"key,attr,omitempty"`
}

type xmlModule struct {
	ID    string `xml:"id,attr"`
	Label string `xml:"label,attr"`
}

type xmlSubgraph struct {
	Edges []xmlEdge `xml:"edge"`
}

type xmlSpec struct {
	XMLName xml.Name      `xml:"specification"`
	Name    string        `xml:"name,attr,omitempty"`
	Modules []xmlModule   `xml:"module"`
	Links   []xmlEdge     `xml:"link"`
	Forks   []xmlSubgraph `xml:"fork"`
	Loops   []xmlSubgraph `xml:"loop"`
}

type xmlRunNode struct {
	ID    string `xml:"id,attr"`
	Label string `xml:"label,attr"`
}

type xmlRunEdge struct {
	From     string `xml:"from,attr"`
	To       string `xml:"to,attr"`
	SpecFrom string `xml:"specFrom,attr,omitempty"`
	SpecTo   string `xml:"specTo,attr,omitempty"`
	SpecKey  int    `xml:"specKey,attr,omitempty"`
	Implicit bool   `xml:"implicit,attr,omitempty"`
}

type xmlRun struct {
	XMLName xml.Name     `xml:"run"`
	Name    string       `xml:"name,attr,omitempty"`
	Nodes   []xmlRunNode `xml:"node"`
	Edges   []xmlRunEdge `xml:"edge"`
}

// EncodeSpec writes sp as XML.
func EncodeSpec(w io.Writer, sp *spec.Spec, name string) error {
	x := xmlSpec{Name: name}
	for _, n := range sp.G.Nodes() {
		x.Modules = append(x.Modules, xmlModule{ID: string(n), Label: sp.G.Label(n)})
	}
	for _, e := range sp.G.Edges() {
		x.Links = append(x.Links, xmlEdge{From: string(e.From), To: string(e.To), Key: e.Key})
	}
	for _, h := range sp.Forks {
		x.Forks = append(x.Forks, toSubgraph(h))
	}
	for _, h := range sp.Loops {
		x.Loops = append(x.Loops, toSubgraph(h))
	}
	return encode(w, x)
}

func toSubgraph(h spec.EdgeSet) xmlSubgraph {
	var sg xmlSubgraph
	for _, e := range h {
		sg.Edges = append(sg.Edges, xmlEdge{From: string(e.From), To: string(e.To), Key: e.Key})
	}
	return sg
}

func encode(w io.Writer, v interface{}) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("wfxml: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// DecodeSpec parses a specification from XML and validates it through
// spec.New.
func DecodeSpec(r io.Reader) (*spec.Spec, error) {
	var x xmlSpec
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("wfxml: %w", err)
	}
	g := graph.New()
	for _, m := range x.Modules {
		if err := g.AddNode(graph.NodeID(m.ID), m.Label); err != nil {
			return nil, fmt.Errorf("wfxml: %w", err)
		}
	}
	// Group parallel links so keys are assigned in document order.
	for _, l := range x.Links {
		e, err := g.AddEdge(graph.NodeID(l.From), graph.NodeID(l.To))
		if err != nil {
			return nil, fmt.Errorf("wfxml: %w", err)
		}
		if e.Key != l.Key {
			return nil, fmt.Errorf("wfxml: link (%s,%s) key %d out of order (got %d); list parallel links in key order", l.From, l.To, l.Key, e.Key)
		}
	}
	toSet := func(sg xmlSubgraph) spec.EdgeSet {
		var out spec.EdgeSet
		for _, e := range sg.Edges {
			out = append(out, graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To), Key: e.Key})
		}
		return out
	}
	var forks, loops []spec.EdgeSet
	for _, sg := range x.Forks {
		forks = append(forks, toSet(sg))
	}
	for _, sg := range x.Loops {
		loops = append(loops, toSet(sg))
	}
	return spec.New(g, forks, loops)
}

// EncodeRun writes a run as XML, including the specification edge
// reference of every non-implicit edge.
func EncodeRun(w io.Writer, r *wfrun.Run, name string) error {
	x := xmlRun{Name: name}
	for _, n := range r.Graph.Nodes() {
		x.Nodes = append(x.Nodes, xmlRunNode{ID: string(n), Label: r.Graph.Label(n)})
	}
	refs := r.EdgeRefs()
	implicit := make(map[graph.Edge]bool, len(r.ImplicitEdges))
	for _, e := range r.ImplicitEdges {
		implicit[e] = true
	}
	edges := r.Graph.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})
	for _, e := range edges {
		re := xmlRunEdge{From: string(e.From), To: string(e.To)}
		if implicit[e] {
			re.Implicit = true
		} else if ref, ok := refs[e]; ok {
			re.SpecFrom = string(ref.From)
			re.SpecTo = string(ref.To)
			re.SpecKey = ref.Key
		}
		x.Edges = append(x.Edges, re)
	}
	return encode(w, x)
}

// DecodeRun parses a run from XML and derives its annotated SP-tree
// against sp (Algorithms 2 and 5).
func DecodeRun(r io.Reader, sp *spec.Spec) (*wfrun.Run, error) {
	var x xmlRun
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("wfxml: %w", err)
	}
	g := graph.New()
	for _, n := range x.Nodes {
		if err := g.AddNode(graph.NodeID(n.ID), n.Label); err != nil {
			return nil, fmt.Errorf("wfxml: %w", err)
		}
	}
	refs := make(map[graph.Edge]graph.Edge)
	for _, re := range x.Edges {
		e, err := g.AddEdge(graph.NodeID(re.From), graph.NodeID(re.To))
		if err != nil {
			return nil, fmt.Errorf("wfxml: %w", err)
		}
		if re.Implicit {
			continue
		}
		if re.SpecFrom != "" {
			refs[e] = graph.Edge{From: graph.NodeID(re.SpecFrom), To: graph.NodeID(re.SpecTo), Key: re.SpecKey}
		}
	}
	return wfrun.Derive(sp, g, refs)
}

// ValidateRunTree re-exported check (round-trip convenience for
// callers that already hold a tree).
func ValidateRunTree(r *wfrun.Run) error {
	return sptree.ValidateRunTree(r.Tree, r.Spec.Tree)
}
