package wfxml

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

// FuzzParseWorkflowXML: DecodeSpec must be total on arbitrary bytes —
// reject with an error or accept, never panic — and every accepted
// specification must survive an encode/decode round-trip with its
// structure intact (the store trusts this whenever it re-parses its
// own files).
func FuzzParseWorkflowXML(f *testing.F) {
	// Seed with real encodings of catalog workflows plus hand-written
	// edge cases; the checked-in corpus under testdata/fuzz extends
	// these with crash-shaped inputs.
	for _, name := range []string{"PA", "EMBOSS"} {
		sp, err := gen.Catalog(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, sp, name); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`<specification><module id="s" label="S"/><module id="t" label="T"/><link from="s" to="t"/></specification>`))
	f.Add([]byte(`<specification><module id="s" label="S"/><module id="t" label="T"/><link from="s" to="t"/><link from="s" to="t" key="1"/><fork><edge from="s" to="t"/></fork></specification>`))
	f.Add([]byte(`<specification/>`))
	f.Add([]byte(`not xml at all`))
	f.Add([]byte(`<specification><link from="a" to="b"/></specification>`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted: the spec must re-serialize and re-parse to the
		// same structure.
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, sp, "fuzz"); err != nil {
			t.Fatalf("accepted spec failed to encode: %v\ninput: %q", err, data)
		}
		sp2, err := DecodeSpec(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip re-decode failed: %v\nencoded: %s", err, buf.String())
		}
		if sp.Stats() != sp2.Stats() {
			t.Fatalf("round-trip changed structure: %+v -> %+v", sp.Stats(), sp2.Stats())
		}
		if sp.Tree.Signature() != sp2.Tree.Signature() {
			t.Fatalf("round-trip changed the SP-tree:\n%s\nvs\n%s", sp.Tree, sp2.Tree)
		}
	})
}

// FuzzParseRunXML: DecodeRun against a fixed specification must be
// total too, and accepted runs must round-trip through EncodeRun.
func FuzzParseRunXML(f *testing.F) {
	sp, err := gen.Catalog("PA")
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(`<run><node id="s" label="S"/><node id="t" label="T"/><edge from="s" to="t"/></run>`))
	f.Add([]byte(`<run/>`))
	f.Add([]byte(`garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRun(bytes.NewReader(data), sp)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("DecodeRun accepted an invalid run: %v\ninput: %q", err, data)
		}
		var buf bytes.Buffer
		if err := EncodeRun(&buf, r, "fuzz"); err != nil {
			t.Fatalf("accepted run failed to encode: %v", err)
		}
		r2, err := DecodeRun(bytes.NewReader(buf.Bytes()), sp)
		if err != nil {
			t.Fatalf("round-trip re-decode failed: %v\nencoded: %s", err, buf.String())
		}
		if r.NumNodes() != r2.NumNodes() || r.NumEdges() != r2.NumEdges() {
			t.Fatalf("round-trip changed run size: %d/%d -> %d/%d",
				r.NumNodes(), r.NumEdges(), r2.NumNodes(), r2.NumEdges())
		}
	})
}
