// Package cost implements the edit-operation cost models of
// Section III-C.2 of Bao et al.
//
// The cost of inserting or deleting an elementary path p is
// γ(|p|, Label(s(p)), Label(t(p))): a function of the path length and
// the labels on its two terminals. γ must be a distance metric with
// respect to elementary path insertions and deletions: non-negative,
// zero only on the empty path, symmetric between insertion and
// deletion, and satisfying the quadrangle inequality
//
//	γ(l1+l2+l3, A, D) ≤ γ(l1+l2'+l3, A, D) + γ(l2, B, C) + γ(l2', B, C).
//
// Any sublinear power γ(l) = l^ε with ε ≤ 1 is eligible; ε = 0 is the
// unit cost model and ε = 1 the length cost model.
package cost

import (
	"fmt"
	"math"
)

// Model prices elementary path edit operations.
type Model interface {
	// PathCost returns γ(length, srcLabel, dstLabel), the cost of
	// inserting (equivalently, deleting) an elementary path of the
	// given length between terminals carrying the given labels.
	// length must be >= 1 for a real path.
	PathCost(length int, srcLabel, dstLabel string) float64
	// Name identifies the model in reports.
	Name() string
}

// Unit assigns every edit operation cost 1 (γ(l) = l^0).
type Unit struct{}

// PathCost implements Model.
func (Unit) PathCost(length int, _, _ string) float64 {
	if length <= 0 {
		return 0
	}
	return 1
}

// Name implements Model.
func (Unit) Name() string { return "unit" }

// Length prices an operation by the length of the edited path
// (γ(l) = l).
type Length struct{}

// PathCost implements Model.
func (Length) PathCost(length int, _, _ string) float64 {
	if length <= 0 {
		return 0
	}
	return float64(length)
}

// Name implements Model.
func (Length) Name() string { return "length" }

// Power prices an operation as l^Epsilon. Epsilon must be <= 1 for the
// quadrangle inequality to hold; the paper evaluates ε ∈ [0, 1].
type Power struct{ Epsilon float64 }

// PathCost implements Model.
func (p Power) PathCost(length int, _, _ string) float64 {
	if length <= 0 {
		return 0
	}
	return math.Pow(float64(length), p.Epsilon)
}

// Name implements Model. The full-precision epsilon matters: the
// service layer keys engine pools and result caches by model name, so
// two Power models must never share a name unless they price
// identically.
func (p Power) Name() string { return fmt.Sprintf("power(%g)", p.Epsilon) }

// Weighted scales a base model by per-terminal-label weights,
// demonstrating the label-dependent generality of the cost model. The
// cost is Base(l) * (W[src] + W[dst]) / 2, with missing weights
// defaulting to 1. Note that skewed weights can violate the
// quadrangle inequality; validate candidate weightings with
// CheckMetric before using them for differencing.
type Weighted struct {
	Base Model
	W    map[string]float64
}

// PathCost implements Model.
func (w Weighted) PathCost(length int, srcLabel, dstLabel string) float64 {
	if length <= 0 {
		return 0
	}
	ws, ok := w.W[srcLabel]
	if !ok {
		ws = 1
	}
	wd, ok := w.W[dstLabel]
	if !ok {
		wd = 1
	}
	return w.Base.PathCost(length, srcLabel, dstLabel) * (ws + wd) / 2
}

// Name implements Model.
func (w Weighted) Name() string { return "weighted(" + w.Base.Name() + ")" }

// Func adapts a plain function to a Model.
type Func struct {
	Fn    func(length int, srcLabel, dstLabel string) float64
	Label string
}

// PathCost implements Model.
func (f Func) PathCost(length int, srcLabel, dstLabel string) float64 {
	return f.Fn(length, srcLabel, dstLabel)
}

// Name implements Model.
func (f Func) Name() string { return f.Label }

// CheckMetric verifies the metric conditions of Section III-C.2 on a
// model for all lengths up to maxLen and the given label alphabet:
// non-negativity, identity (γ > 0 for l ≥ 1) and the quadrangle
// inequality over all length splits. Symmetry holds by construction
// (one function prices both insertion and deletion). It returns the
// first violation found, or nil.
func CheckMetric(m Model, maxLen int, labels []string) error {
	if len(labels) == 0 {
		labels = []string{""}
	}
	for l := 1; l <= maxLen; l++ {
		for _, a := range labels {
			for _, b := range labels {
				if c := m.PathCost(l, a, b); c < 0 {
					return fmt.Errorf("cost: %s: negative cost %g at l=%d (%s,%s)", m.Name(), c, l, a, b)
				} else if c == 0 {
					return fmt.Errorf("cost: %s: zero cost for non-empty path l=%d (%s,%s)", m.Name(), l, a, b)
				}
			}
		}
	}
	// Quadrangle inequality with label-free split bounds: for every
	// l1, l3 >= 0 and l2, l2' >= 1 with l1+l2+l3 <= maxLen and
	// l1+l2'+l3 <= maxLen,
	//   γ(l1+l2+l3) <= γ(l1+l2'+l3) + γ(l2) + γ(l2').
	for _, a := range labels {
		for _, d := range labels {
			for _, b := range labels {
				for _, c := range labels {
					for l1 := 0; l1 <= maxLen; l1++ {
						for l3 := 0; l1+l3 <= maxLen; l3++ {
							for l2 := 1; l1+l2+l3 <= maxLen; l2++ {
								for l2p := 1; l1+l2p+l3 <= maxLen; l2p++ {
									lhs := m.PathCost(l1+l2+l3, a, d)
									rhs := m.PathCost(l1+l2p+l3, a, d) +
										m.PathCost(l2, b, c) + m.PathCost(l2p, b, c)
									if lhs > rhs+1e-9 {
										return fmt.Errorf(
											"cost: %s: quadrangle violated: γ(%d)=%g > γ(%d)+γ(%d)+γ(%d)=%g",
											m.Name(), l1+l2+l3, lhs, l1+l2p+l3, l2, l2p, rhs)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return nil
}
