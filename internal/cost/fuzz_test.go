package cost

import (
	"math"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	if m, err := Parse("unit"); err != nil || m.Name() != "unit" {
		t.Fatalf("unit: %v %v", m, err)
	}
	if m, err := Parse("length"); err != nil || m.Name() != "length" {
		t.Fatalf("length: %v %v", m, err)
	}
	for _, spelling := range []string{"power:0.5", "power(0.5)"} {
		m, err := Parse(spelling)
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := m.(Power); !ok || p.Epsilon != 0.5 {
			t.Fatalf("%s parsed as %#v", spelling, m)
		}
	}
	for _, bad := range []string{"power:2", "power:-0.1", "power:x", "power:NaN", "power()", "manhattan", "", "power(0.5", "weighted(unit)"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

// FuzzParseCost: whatever the input, Parse never panics; when it
// accepts a name the model must be priced sanely (finite, positive on
// real paths, zero on empty ones) and its Name must round-trip through
// Parse to an identically-pricing model — the property the service
// relies on when it keys engine pools and caches by Name.
func FuzzParseCost(f *testing.F) {
	for _, seed := range []string{
		"unit", "length", "power:0", "power:1", "power:0.5",
		"power(0.25)", "power:5e-1", "power:2", "power:-1",
		"power:NaN", "power:Inf", "power:", "power", "", "bogus",
		"power(0.5)", "power()", "power()", "unitx", "\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		m, err := Parse(name)
		if err != nil {
			if m != nil {
				t.Fatalf("Parse(%q) returned both a model and %v", name, err)
			}
			return
		}
		if m.Name() == "" {
			t.Fatalf("Parse(%q): empty model name", name)
		}
		for l := 0; l <= 4; l++ {
			c := m.PathCost(l, "a", "b")
			if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
				t.Fatalf("Parse(%q): PathCost(%d) = %g", name, l, c)
			}
			if l == 0 && c != 0 {
				t.Fatalf("Parse(%q): empty path costs %g", name, c)
			}
			if l > 0 && c == 0 {
				t.Fatalf("Parse(%q): real path of length %d is free", name, l)
			}
		}
		// Name round-trip: the canonical name parses back to a model
		// with identical pricing.
		m2, err := Parse(m.Name())
		if err != nil {
			t.Fatalf("Parse(%q).Name() = %q does not re-parse: %v", name, m.Name(), err)
		}
		if m2.Name() != m.Name() {
			t.Fatalf("name drift: %q -> %q", m.Name(), m2.Name())
		}
		for l := 1; l <= 4; l++ {
			if a, b := m.PathCost(l, "x", "y"), m2.PathCost(l, "x", "y"); a != b {
				t.Fatalf("Parse(%q): re-parsed model prices %g vs %g at l=%d", name, b, a, l)
			}
		}
		// Accepted models must satisfy the paper's metric conditions
		// on small instances (quadrangle inequality included).
		if err := CheckMetric(m, 5, nil); err != nil {
			t.Fatalf("Parse(%q) accepted a non-metric: %v", name, err)
		}
		// Strings with interior NUL or newlines must never produce a
		// model whose name contains them (cache keys join on NUL).
		if strings.ContainsAny(m.Name(), "\x00\n") {
			t.Fatalf("Parse(%q): model name %q contains a separator byte", name, m.Name())
		}
	})
}
