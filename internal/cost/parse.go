package cost

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse resolves a cost-model name to a Model: "unit", "length", or
// the sublinear power family as "power:EPS" (the CLI flag spelling) or
// "power(EPS)" (the Model.Name spelling, so every built-in model's
// Name round-trips through Parse). The exponent is confined to the
// metric range [0, 1] of the paper: ε > 1 violates the quadrangle
// inequality and ε < 0 (or NaN) is not a metric at all. This is the
// input validation for every untrusted boundary — the -cost flag and
// the service's ?cost= parameter both land here.
func Parse(name string) (Model, error) {
	switch {
	case name == "unit":
		return Unit{}, nil
	case name == "length":
		return Length{}, nil
	case strings.HasPrefix(name, "power:"):
		return parsePower(strings.TrimPrefix(name, "power:"))
	case strings.HasPrefix(name, "power(") && strings.HasSuffix(name, ")"):
		return parsePower(name[len("power(") : len(name)-1])
	}
	return nil, fmt.Errorf("cost: unknown cost model %q (want unit, length or power:EPS)", name)
}

func parsePower(arg string) (Model, error) {
	eps, err := strconv.ParseFloat(arg, 64)
	if err != nil {
		return nil, fmt.Errorf("cost: bad power exponent: %w", err)
	}
	if math.IsNaN(eps) || eps < 0 || eps > 1 {
		return nil, fmt.Errorf("cost: power exponent %g outside the metric range [0, 1]", eps)
	}
	return Power{Epsilon: eps}, nil
}
