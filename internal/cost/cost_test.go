package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnit(t *testing.T) {
	u := Unit{}
	if u.PathCost(1, "a", "b") != 1 || u.PathCost(100, "a", "b") != 1 {
		t.Fatal("unit cost must be 1 for any non-empty path")
	}
	if u.PathCost(0, "a", "b") != 0 {
		t.Fatal("unit cost of empty path must be 0")
	}
	if u.Name() != "unit" {
		t.Fatalf("Name = %q", u.Name())
	}
}

func TestLength(t *testing.T) {
	l := Length{}
	if l.PathCost(7, "a", "b") != 7 {
		t.Fatal("length cost must equal the path length")
	}
	if l.PathCost(0, "", "") != 0 {
		t.Fatal("length cost of empty path must be 0")
	}
}

func TestPowerMatchesEndpoints(t *testing.T) {
	if got := (Power{Epsilon: 0}).PathCost(9, "", ""); got != 1 {
		t.Fatalf("power(0)(9) = %g, want 1 (unit)", got)
	}
	if got := (Power{Epsilon: 1}).PathCost(9, "", ""); got != 9 {
		t.Fatalf("power(1)(9) = %g, want 9 (length)", got)
	}
	if got := (Power{Epsilon: 0.5}).PathCost(9, "", ""); math.Abs(got-3) > 1e-12 {
		t.Fatalf("power(0.5)(9) = %g, want 3", got)
	}
}

func TestPowerIsMetricForEpsilonLeqOne(t *testing.T) {
	for _, eps := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if err := CheckMetric(Power{Epsilon: eps}, 12, nil); err != nil {
			t.Errorf("power(%g) should satisfy the metric conditions: %v", eps, err)
		}
	}
}

func TestSuperlinearViolatesQuadrangle(t *testing.T) {
	if err := CheckMetric(Power{Epsilon: 2}, 8, nil); err == nil {
		t.Fatal("l^2 must violate the quadrangle inequality")
	}
}

func TestNegativeCostRejected(t *testing.T) {
	bad := Func{Fn: func(l int, _, _ string) float64 { return -1 }, Label: "neg"}
	if err := CheckMetric(bad, 3, nil); err == nil {
		t.Fatal("negative cost must be rejected")
	}
	zero := Func{Fn: func(l int, _, _ string) float64 { return 0 }, Label: "zero"}
	if err := CheckMetric(zero, 3, nil); err == nil {
		t.Fatal("zero cost for non-empty paths must be rejected")
	}
}

func TestWeighted(t *testing.T) {
	w := Weighted{Base: Length{}, W: map[string]float64{"hot": 3}}
	if got := w.PathCost(2, "hot", "hot"); got != 6 {
		t.Fatalf("weighted cost = %g, want 6", got)
	}
	if got := w.PathCost(2, "cold", "cold"); got != 2 {
		t.Fatalf("default weight should be 1: got %g", got)
	}
	if got := w.PathCost(0, "hot", "hot"); got != 0 {
		t.Fatal("weighted cost of empty path must be 0")
	}
	// With uniform weights the model degenerates to its base and
	// remains metric.
	uniform := Weighted{Base: Length{}, W: map[string]float64{"hot": 1, "cold": 1}}
	if err := CheckMetric(uniform, 6, []string{"hot", "cold"}); err != nil {
		t.Fatalf("uniformly weighted length should stay metric: %v", err)
	}
	// Skewed weights let a heavy endpoint pair be undercut by cheap
	// replacements of its middle segment — CheckMetric must catch the
	// quadrangle violation.
	if err := CheckMetric(w, 6, []string{"hot", "cold"}); err == nil {
		t.Fatal("skewed weights should violate the quadrangle inequality")
	}
}

func TestPowerMonotoneProperty(t *testing.T) {
	// For ε ∈ [0,1], cost is non-decreasing in length — the property
	// the skeleton-length minimization in core relies on for the
	// paper's cost family.
	f := func(l uint8, eps8 uint8) bool {
		l1 := int(l%50) + 1
		l2 := l1 + 1
		eps := float64(eps8%101) / 100
		p := Power{Epsilon: eps}
		return p.PathCost(l1, "", "") <= p.PathCost(l2, "", "")+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFuncModel(t *testing.T) {
	m := Func{Fn: func(l int, s, d string) float64 { return float64(l) + float64(len(s)+len(d)) }, Label: "custom"}
	if m.Name() != "custom" {
		t.Fatal("name passthrough broken")
	}
	if m.PathCost(2, "ab", "c") != 5 {
		t.Fatal("function not applied")
	}
}
