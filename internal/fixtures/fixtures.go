// Package fixtures builds the worked examples of the paper — the
// specification and runs of Fig. 2, the edit script of Fig. 3/7, and
// the cost-model specification of Fig. 17 — for use in tests, examples
// and benchmarks.
package fixtures

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/wfrun"
)

// fig2Graph builds the SP specification graph of Fig. 2(a): modules
// 1..7 with three parallel middle branches 2→{3,4,5}→6.
func fig2Graph() *graph.Graph {
	g := graph.New()
	for i := 1; i <= 7; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	for _, e := range [][2]string{
		{"1", "2"},
		{"2", "3"}, {"3", "6"},
		{"2", "4"}, {"4", "6"},
		{"2", "5"}, {"5", "6"},
		{"6", "7"},
	} {
		g.MustAddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return g
}

func edges(g *graph.Graph, pairs ...[2]string) spec.EdgeSet {
	var out spec.EdgeSet
	for _, p := range pairs {
		out = append(out, graph.Edge{From: graph.NodeID(p[0]), To: graph.NodeID(p[1])})
	}
	return out
}

// Fig2Spec returns the basic SP-workflow specification of Fig. 2(a)
// used in Sections IV and V: forks over the series subgraphs (2,3,6),
// (2,4,6), (2,5,6) and the entire graph, and no loops.
func Fig2Spec() *spec.Spec {
	g := fig2Graph()
	forks := []spec.EdgeSet{
		edges(g, [2]string{"2", "3"}, [2]string{"3", "6"}),
		edges(g, [2]string{"2", "4"}, [2]string{"4", "6"}),
		edges(g, [2]string{"2", "5"}, [2]string{"5", "6"}),
		edges(g,
			[2]string{"1", "2"},
			[2]string{"2", "3"}, [2]string{"3", "6"},
			[2]string{"2", "4"}, [2]string{"4", "6"},
			[2]string{"2", "5"}, [2]string{"5", "6"},
			[2]string{"6", "7"}),
	}
	sp, err := spec.New(g, forks, nil)
	if err != nil {
		panic(err)
	}
	return sp
}

// Fig2SpecWithLoop returns the extended specification of Section VI:
// the forks of Fig2Spec plus the loop over the subgraph from 2 to 6
// indicated by the dotted back arrow of Fig. 2(a).
func Fig2SpecWithLoop() *spec.Spec {
	g := fig2Graph()
	forks := []spec.EdgeSet{
		edges(g, [2]string{"2", "3"}, [2]string{"3", "6"}),
		edges(g, [2]string{"2", "4"}, [2]string{"4", "6"}),
		edges(g, [2]string{"2", "5"}, [2]string{"5", "6"}),
	}
	loops := []spec.EdgeSet{
		edges(g,
			[2]string{"2", "3"}, [2]string{"3", "6"},
			[2]string{"2", "4"}, [2]string{"4", "6"},
			[2]string{"2", "5"}, [2]string{"5", "6"}),
	}
	sp, err := spec.New(g, forks, loops)
	if err != nil {
		panic(err)
	}
	return sp
}

// runGraph assembles a run graph from instance ids (labels are the
// instance id with its trailing letters stripped).
func runGraph(edges [][2]string) *graph.Graph {
	g := graph.New()
	add := func(id string) {
		label := id
		for len(label) > 0 {
			c := label[len(label)-1]
			if c >= 'a' && c <= 'z' {
				label = label[:len(label)-1]
				continue
			}
			break
		}
		g.MustAddNode(graph.NodeID(id), label)
	}
	seen := map[string]bool{}
	for _, e := range edges {
		for _, id := range []string{e[0], e[1]} {
			if !seen[id] {
				seen[id] = true
				add(id)
			}
		}
	}
	for _, e := range edges {
		g.MustAddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return g
}

// Fig2R1 returns run R1 of Fig. 2(b): one copy of the workflow in
// which the (2,3,6) branch forked twice and the (2,4,6) branch ran
// once.
func Fig2R1(sp *spec.Spec) *wfrun.Run {
	g := runGraph([][2]string{
		{"1a", "2a"},
		{"2a", "3a"}, {"3a", "6a"},
		{"2a", "3b"}, {"3b", "6a"},
		{"2a", "4a"}, {"4a", "6a"},
		{"6a", "7a"},
	})
	r, err := wfrun.Derive(sp, g, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// Fig2R2 returns run R2 of Fig. 2(c): two fork copies of the entire
// workflow sharing terminals 1a and 7a.
func Fig2R2(sp *spec.Spec) *wfrun.Run {
	g := runGraph([][2]string{
		{"1a", "2a"},
		{"2a", "3a"}, {"3a", "6a"},
		{"2a", "4a"}, {"4a", "6a"},
		{"2a", "4b"}, {"4b", "6a"},
		{"6a", "7a"},
		{"1a", "2b"},
		{"2b", "4c"}, {"4c", "6b"},
		{"2b", "5a"}, {"5a", "6b"},
		{"6b", "7a"},
	})
	r, err := wfrun.Derive(sp, g, nil)
	if err != nil {
		panic(err)
	}
	return r
}

// Fig2R3 returns run R3 of Fig. 2(d): two loop iterations chained by
// the implicit edge (6a, 2b). Requires Fig2SpecWithLoop.
func Fig2R3(sp *spec.Spec) *wfrun.Run {
	g := runGraph([][2]string{
		{"1a", "2a"},
		{"2a", "3a"}, {"3a", "6a"},
		{"2a", "4a"}, {"4a", "6a"},
		{"2a", "4b"}, {"4b", "6a"},
		{"6a", "2b"}, // implicit loop edge
		{"2b", "4c"}, {"4c", "6b"},
		{"2b", "5a"}, {"5a", "6b"},
		{"6b", "7a"},
	})
	r, err := wfrun.Derive(sp, g, nil)
	if err != nil {
		panic(err)
	}
	return r
}
