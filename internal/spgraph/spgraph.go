// Package spgraph recognizes directed series-parallel graphs and
// produces their canonical SP-tree decomposition (Valdes, Tarjan and
// Lawler; Section IV-A of Bao et al.).
//
// Recognition works by exhaustive series and parallel reduction: a
// node other than the terminals with in-degree and out-degree one is
// series-reduced, and two parallel edges between the same endpoints
// are parallel-reduced. A flow network is series-parallel iff the
// reductions terminate with the single edge (s, t). The reduction
// history yields a binary decomposition tree, which is compressed into
// the canonical SP-tree (unique up to reordering of P children).
package spgraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sptree"
)

// redEdge is an edge of the shrinking reduction multigraph together
// with the SP-tree it represents.
type redEdge struct {
	id       int
	from, to graph.NodeID
	tree     *sptree.Node
	dead     bool
}

type reducer struct {
	edges map[int]*redEdge
	out   map[graph.NodeID]map[int]bool
	in    map[graph.NodeID]map[int]bool
	next  int
}

func (r *reducer) add(from, to graph.NodeID, t *sptree.Node) *redEdge {
	e := &redEdge{id: r.next, from: from, to: to, tree: t}
	r.next++
	r.edges[e.id] = e
	if r.out[from] == nil {
		r.out[from] = make(map[int]bool)
	}
	if r.in[to] == nil {
		r.in[to] = make(map[int]bool)
	}
	r.out[from][e.id] = true
	r.in[to][e.id] = true
	return e
}

func (r *reducer) remove(e *redEdge) {
	e.dead = true
	delete(r.edges, e.id)
	delete(r.out[e.from], e.id)
	delete(r.in[e.to], e.id)
}

// Decompose returns the canonical SP-tree of g, or an error if g is
// not a series-parallel flow network. Q leaves carry the edges of g;
// every tree node carries the labels of its terminals.
func Decompose(g *graph.Graph) (*sptree.Node, error) {
	s, t, err := g.CheckFlowNetwork()
	if err != nil {
		return nil, fmt.Errorf("spgraph: %w", err)
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("spgraph: graph has a cycle")
	}
	r := &reducer{
		edges: make(map[int]*redEdge),
		out:   make(map[graph.NodeID]map[int]bool),
		in:    make(map[graph.NodeID]map[int]bool),
	}
	for _, e := range g.Edges() {
		r.add(e.From, e.To, sptree.NewQ(e, g.Label(e.From), g.Label(e.To)))
	}

	// Worklists: nodes to test for series reduction, endpoint pairs
	// to test for parallel reduction.
	nodeWork := make([]graph.NodeID, 0, g.NumNodes())
	nodeQueued := make(map[graph.NodeID]bool)
	pairWork := make([][2]graph.NodeID, 0, g.NumEdges())
	pairQueued := make(map[[2]graph.NodeID]bool)
	pushNode := func(n graph.NodeID) {
		if !nodeQueued[n] {
			nodeQueued[n] = true
			nodeWork = append(nodeWork, n)
		}
	}
	pushPair := func(a, b graph.NodeID) {
		p := [2]graph.NodeID{a, b}
		if !pairQueued[p] {
			pairQueued[p] = true
			pairWork = append(pairWork, p)
		}
	}
	for _, n := range g.Nodes() {
		pushNode(n)
	}
	for _, e := range g.Edges() {
		pushPair(e.From, e.To)
	}

	for len(nodeWork) > 0 || len(pairWork) > 0 {
		if len(pairWork) > 0 {
			p := pairWork[len(pairWork)-1]
			pairWork = pairWork[:len(pairWork)-1]
			pairQueued[p] = false
			r.parallelReduce(p[0], p[1], pushPair, pushNode)
			continue
		}
		n := nodeWork[len(nodeWork)-1]
		nodeWork = nodeWork[:len(nodeWork)-1]
		nodeQueued[n] = false
		if n == s || n == t {
			continue
		}
		r.seriesReduce(n, pushPair, pushNode)
	}

	if len(r.edges) != 1 {
		return nil, fmt.Errorf("spgraph: graph is not series-parallel (%d edges remain after reduction)", len(r.edges))
	}
	var last *redEdge
	for _, e := range r.edges {
		last = e
	}
	if last.from != s || last.to != t {
		return nil, fmt.Errorf("spgraph: reduction terminated at (%s,%s), want (%s,%s)", last.from, last.to, s, t)
	}
	root := sptree.Canonicalize(last.tree)
	return root, nil
}

// parallelReduce merges all parallel edges between (a, b) into one.
// Candidates are processed in edge-id order so decompositions are
// deterministic.
func (r *reducer) parallelReduce(a, b graph.NodeID, pushPair func(x, y graph.NodeID), pushNode func(n graph.NodeID)) {
	var parallel []*redEdge
	for id := range r.out[a] {
		e := r.edges[id]
		if e != nil && e.to == b {
			parallel = append(parallel, e)
		}
	}
	if len(parallel) < 2 {
		return
	}
	sort.Slice(parallel, func(i, j int) bool { return parallel[i].id < parallel[j].id })
	trees := make([]*sptree.Node, len(parallel))
	for i, e := range parallel {
		trees[i] = e.tree
		r.remove(e)
	}
	merged := sptree.NewInternal(sptree.P, trees...)
	r.add(a, b, merged)
	// Endpoint degrees dropped; they may now be series-reducible.
	pushNode(a)
	pushNode(b)
}

// seriesReduce contracts n if it has exactly one incoming and one
// outgoing edge.
func (r *reducer) seriesReduce(n graph.NodeID, pushPair func(x, y graph.NodeID), pushNode func(m graph.NodeID)) {
	if len(r.in[n]) != 1 || len(r.out[n]) != 1 {
		return
	}
	var ein, eout *redEdge
	for id := range r.in[n] {
		ein = r.edges[id]
	}
	for id := range r.out[n] {
		eout = r.edges[id]
	}
	if ein == nil || eout == nil || ein == eout {
		return
	}
	r.remove(ein)
	r.remove(eout)
	merged := sptree.NewInternal(sptree.S, ein.tree, eout.tree)
	r.add(ein.from, eout.to, merged)
	pushPair(ein.from, eout.to)
	pushNode(ein.from)
	pushNode(eout.to)
}

// IsSP reports whether g is a series-parallel flow network.
func IsSP(g *graph.Graph) bool {
	_, err := Decompose(g)
	return err == nil
}

// ForbiddenMinor returns the 4-node specification graph of Theorem 1
// (s, v1, v2, t with edges s→v1, s→v2, v1→v2, v1→t, v2→t), the
// forbidden minor for directed acyclic SP-graphs, on which the
// workflow difference problem is already NP-hard.
func ForbiddenMinor() *graph.Graph {
	g := graph.New()
	for _, n := range []string{"s", "v1", "v2", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	g.MustAddEdge("s", "v1")
	g.MustAddEdge("s", "v2")
	g.MustAddEdge("v1", "v2")
	g.MustAddEdge("v1", "t")
	g.MustAddEdge("v2", "t")
	return g
}
