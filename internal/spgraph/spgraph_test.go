package spgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sptree"
)

func TestDecomposeSingleEdge(t *testing.T) {
	g := graph.New()
	g.MustAddNode("s", "s")
	g.MustAddNode("t", "t")
	g.MustAddEdge("s", "t")
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Type != sptree.Q || tree.Src != "s" || tree.Dst != "t" {
		t.Fatalf("single edge should decompose to a Q leaf, got %s", tree)
	}
}

func TestDecomposeDiamond(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"s", "a", "b", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	g.MustAddEdge("s", "a")
	g.MustAddEdge("a", "t")
	g.MustAddEdge("s", "b")
	g.MustAddEdge("b", "t")
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Type != sptree.P || len(tree.Children) != 2 {
		t.Fatalf("diamond should be P of two series, got:\n%s", tree)
	}
	for _, c := range tree.Children {
		if c.Type != sptree.S || len(c.Children) != 2 {
			t.Fatalf("branch should be S of two edges, got:\n%s", c)
		}
	}
	if err := sptree.ValidateSpecTree(tree); err != nil {
		t.Fatalf("decomposition violates canonical invariants: %v", err)
	}
}

func TestDecomposeMultigraph(t *testing.T) {
	g := graph.New()
	g.MustAddNode("s", "s")
	g.MustAddNode("t", "t")
	g.MustAddEdge("s", "t")
	g.MustAddEdge("s", "t")
	g.MustAddEdge("s", "t")
	tree, err := Decompose(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Type != sptree.P || len(tree.Children) != 3 {
		t.Fatalf("triple edge should be P with 3 leaves, got:\n%s", tree)
	}
}

func TestDecomposeRejectsForbiddenMinor(t *testing.T) {
	g := ForbiddenMinor()
	if _, err := Decompose(g); err == nil {
		t.Fatal("the N-graph must not decompose")
	}
	if IsSP(g) {
		t.Fatal("IsSP should reject the forbidden minor")
	}
}

func TestDecomposeRejectsCycle(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"s", "a", "b", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	g.MustAddEdge("s", "a")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "a")
	g.MustAddEdge("b", "t")
	if _, err := Decompose(g); err == nil {
		t.Fatal("cyclic graph must be rejected")
	}
}

func TestDecomposeDeterministic(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		for i := 0; i < 6; i++ {
			id := graph.NodeID(fmt.Sprint(i))
			g.MustAddNode(id, fmt.Sprint(i))
		}
		g.MustAddEdge("0", "1")
		g.MustAddEdge("1", "5")
		g.MustAddEdge("0", "2")
		g.MustAddEdge("2", "5")
		g.MustAddEdge("0", "3")
		g.MustAddEdge("3", "4")
		g.MustAddEdge("4", "5")
		return g
	}
	t1, err := Decompose(build())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		t2, err := Decompose(build())
		if err != nil {
			t.Fatal(err)
		}
		if t1.Signature() != t2.Signature() {
			t.Fatal("decomposition is not deterministic")
		}
	}
}

// randomSP builds a random SP-graph by structural recursion and
// returns it; used to round-trip through Decompose.
func randomSP(rng *rand.Rand, edgeBudget int) *graph.Graph {
	g := graph.New()
	next := 0
	newNode := func() graph.NodeID {
		id := graph.NodeID(fmt.Sprintf("n%d", next))
		g.MustAddNode(id, string(id))
		next++
		return id
	}
	var build func(s, t graph.NodeID, budget int)
	build = func(s, t graph.NodeID, budget int) {
		if budget <= 1 {
			g.MustAddEdge(s, t)
			return
		}
		if rng.Intn(2) == 0 { // series
			mid := newNode()
			left := 1 + rng.Intn(budget-1)
			build(s, mid, left)
			build(mid, t, budget-left)
		} else { // parallel
			left := 1 + rng.Intn(budget-1)
			build(s, t, left)
			build(s, t, budget-left)
		}
	}
	s, t := newNode(), newNode()
	build(s, t, edgeBudget)
	return g
}

func TestDecomposeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := randomSP(rng, 3+rng.Intn(60))
		tree, err := Decompose(g)
		if err != nil {
			t.Fatalf("trial %d: random SP graph rejected: %v\n%s", trial, err, g)
		}
		if got := tree.CountLeaves(); got != g.NumEdges() {
			t.Fatalf("trial %d: tree has %d leaves, graph has %d edges", trial, got, g.NumEdges())
		}
		if err := sptree.ValidateSpecTree(tree); err != nil {
			t.Fatalf("trial %d: canonical invariants violated: %v", trial, err)
		}
		// Every edge appears exactly once as a leaf.
		seen := map[graph.Edge]bool{}
		for _, leaf := range tree.Leaves() {
			if seen[leaf.Edge] {
				t.Fatalf("trial %d: duplicate leaf %s", trial, leaf.Edge)
			}
			seen[leaf.Edge] = true
			if leaf.Src != g.Label(leaf.Edge.From) || leaf.Dst != g.Label(leaf.Edge.To) {
				t.Fatalf("trial %d: leaf terminals disagree with edge", trial)
			}
		}
		s, _ := g.Source()
		tt, _ := g.Sink()
		if tree.Src != g.Label(s) || tree.Dst != g.Label(tt) {
			t.Fatalf("trial %d: root terminals (%s,%s) don't match graph (%s,%s)",
				trial, tree.Src, tree.Dst, g.Label(s), g.Label(tt))
		}
	}
}

func TestDecomposeRejectsNearlySP(t *testing.T) {
	// An SP graph plus one cross edge that breaks series-parallelism.
	g := graph.New()
	for _, n := range []string{"s", "a", "b", "c", "d", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	// Two parallel chains s->a->b->t and s->c->d->t ...
	g.MustAddEdge("s", "a")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "t")
	g.MustAddEdge("s", "c")
	g.MustAddEdge("c", "d")
	g.MustAddEdge("d", "t")
	// ... with a cross edge a->d.
	g.MustAddEdge("a", "d")
	if _, err := Decompose(g); err == nil {
		t.Fatal("cross-linked graph must not be series-parallel")
	}
}
