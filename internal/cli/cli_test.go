package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/wfxml"
)

func TestParseCost(t *testing.T) {
	if m, err := ParseCost("unit"); err != nil || m.Name() != "unit" {
		t.Fatalf("unit: %v %v", m, err)
	}
	if m, err := ParseCost("length"); err != nil || m.Name() != "length" {
		t.Fatalf("length: %v %v", m, err)
	}
	m, err := ParseCost("power:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := m.(cost.Power); !ok || p.Epsilon != 0.5 {
		t.Fatalf("power:0.5 parsed as %#v", m)
	}
	for _, bad := range []string{"power:2", "power:x", "manhattan", ""} {
		if _, err := ParseCost(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestValidateK(t *testing.T) {
	for _, ok := range []int{1, 2, 99} {
		if err := ValidateK("k", ok); err != nil {
			t.Fatalf("k=%d: %v", ok, err)
		}
	}
	for _, bad := range []int{0, -1, -99} {
		err := ValidateK("k", bad)
		if err == nil {
			t.Fatalf("k=%d should fail", bad)
		}
		if !strings.Contains(err.Error(), "-k") || !strings.Contains(err.Error(), "at least 1") {
			t.Fatalf("k=%d error should name the flag and the floor: %v", bad, err)
		}
	}
	if err := ValidateK("neighbors", 0); err == nil || !strings.Contains(err.Error(), "-neighbors") {
		t.Fatalf("flag name not threaded through: %v", err)
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sp := fixtures.Fig2SpecWithLoop()
	r := fixtures.Fig2R3(sp)

	specPath := filepath.Join(dir, "spec.xml")
	runPath := filepath.Join(dir, "run.xml")
	if err := SaveSpec(specPath, sp, "fig2"); err != nil {
		t.Fatal(err)
	}
	if err := SaveRun(runPath, r, "r3"); err != nil {
		t.Fatal(err)
	}

	sp2, err := LoadSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Stats() != sp.Stats() {
		t.Fatal("spec stats changed")
	}
	r2, err := LoadRun(runPath, sp2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumEdges() != r.NumEdges() {
		t.Fatal("run size changed")
	}
	if err := wfxml.ValidateRunTree(r2); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadSpec("/nonexistent/spec.xml"); err == nil {
		t.Fatal("missing spec file should fail")
	}
	sp := fixtures.Fig2Spec()
	if _, err := LoadRun("/nonexistent/run.xml", sp); err == nil {
		t.Fatal("missing run file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte("<garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(bad); err == nil {
		t.Fatal("garbage spec should fail")
	}
	if _, err := LoadRun(bad, sp); err == nil {
		t.Fatal("garbage run should fail")
	}
}
