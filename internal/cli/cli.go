// Package cli holds small helpers shared by the command-line tools:
// cost-model parsing and XML file loading.
package cli

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// ParseCost parses a -cost flag value: "unit", "length" or
// "power:EPS" with EPS ≤ 1.
func ParseCost(name string) (cost.Model, error) {
	switch {
	case name == "unit":
		return cost.Unit{}, nil
	case name == "length":
		return cost.Length{}, nil
	case strings.HasPrefix(name, "power:"):
		eps, err := strconv.ParseFloat(strings.TrimPrefix(name, "power:"), 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad power exponent: %w", err)
		}
		// The paper evaluates ε ∈ [0, 1]; ε > 1 violates the
		// quadrangle inequality and ε < 0 (or NaN) is not a metric at
		// all. This is also the service's input validation — ?cost=
		// reaches here from untrusted HTTP clients.
		if math.IsNaN(eps) || eps < 0 || eps > 1 {
			return nil, fmt.Errorf("cli: power exponent %g outside the metric range [0, 1]", eps)
		}
		return cost.Power{Epsilon: eps}, nil
	}
	return nil, fmt.Errorf("cli: unknown cost model %q (want unit, length or power:EPS)", name)
}

// LoadSpec reads a specification XML file.
func LoadSpec(path string) (*spec.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wfxml.DecodeSpec(f)
}

// LoadRun reads a run XML file and derives its annotated tree against
// the specification.
func LoadRun(path string, sp *spec.Spec) (*wfrun.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wfxml.DecodeRun(f, sp)
}

// SaveSpec writes a specification XML file.
func SaveSpec(path string, sp *spec.Spec, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wfxml.EncodeSpec(f, sp, name)
}

// SaveRun writes a run XML file.
func SaveRun(path string, r *wfrun.Run, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wfxml.EncodeRun(f, r, name)
}
