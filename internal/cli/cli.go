// Package cli holds small helpers shared by the command-line tools:
// cost-model parsing and XML file loading.
package cli

import (
	"fmt"
	"os"

	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// ValidateK rejects non-positive cluster/neighbor counts at the
// command boundary. The analytics library clamps silently (it serves
// programmatic callers that compute k), but a human typing -k 0 or
// -k -3 meant something else and deserves an error naming the flag,
// the same hardening posture store.ValidateName applies to names.
func ValidateK(flagName string, k int) error {
	if k < 1 {
		return fmt.Errorf("-%s must be at least 1, got %d", flagName, k)
	}
	return nil
}

// ValidateName rejects spec/run names that could escape the
// repository layout — the one validator every untrusted boundary
// (CLI flags, HTTP path values, ?name= and ?run= parameters) shares.
// It delegates to store.ValidateName, which owns the rules.
func ValidateName(name string) error {
	return store.ValidateName(name)
}

// ParseCost parses a -cost flag value: "unit", "length" or
// "power:EPS" with EPS ≤ 1. It delegates to cost.Parse, which owns
// the validation (and its fuzz target) for every untrusted boundary.
func ParseCost(name string) (cost.Model, error) {
	return cost.Parse(name)
}

// LoadSpec reads a specification XML file.
func LoadSpec(path string) (*spec.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wfxml.DecodeSpec(f)
}

// LoadRun reads a run XML file and derives its annotated tree against
// the specification.
func LoadRun(path string, sp *spec.Spec) (*wfrun.Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return wfxml.DecodeRun(f, sp)
}

// SaveSpec writes a specification XML file.
func SaveSpec(path string, sp *spec.Spec, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wfxml.EncodeSpec(f, sp, name)
}

// SaveRun writes a run XML file.
func SaveRun(path string, r *wfrun.Run, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wfxml.EncodeRun(f, r, name)
}
