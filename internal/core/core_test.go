package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// TestPaperExampleDistance reproduces Example 5.2 / Fig. 9: the edit
// distance between runs R1 and R2 of Fig. 2 is 4 under the unit cost
// model.
func TestPaperExampleDistance(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	d, err := Distance(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 4 {
		t.Fatalf("δ(R1,R2) = %g, want 4 (Example 5.2)", d)
	}
}

// TestPaperExampleScript checks the script of Fig. 3/7: cost 4, every
// intermediate valid, and the final tree equivalent to T2.
func TestPaperExampleScript(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if got := script.TotalCost(); got != res.Distance {
		t.Fatalf("script cost %g != distance %g\n%s", got, res.Distance, script)
	}
	if len(script.Ops) != 4 {
		t.Fatalf("script has %d ops, want 4 (Fig. 7):\n%s", len(script.Ops), script)
	}
	if !sptree.EquivalentRuns(final, r2.Tree) {
		t.Fatalf("script result differs from T2:\n%s\nvs\n%s", final, r2.Tree)
	}
	if err := sptree.ValidateRunTree(final, sp.Tree); err != nil {
		t.Fatal(err)
	}
}

func TestSelfDistanceZero(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	d, err := Distance(r1, r1, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("δ(R,R) = %g, want 0", d)
	}
}

func TestDifferentSpecsRejected(t *testing.T) {
	spA := fixtures.Fig2Spec()
	spB := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(spA)
	r2 := fixtures.Fig2R2(spB)
	if _, err := Diff(r1, r2, cost.Unit{}); err == nil {
		t.Fatal("runs of different specification objects must be rejected")
	}
}

func TestLoopDistance(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	r3 := fixtures.Fig2R3(sp) // two iterations
	one, err := wfrun.Execute(sp, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(r3, one, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("δ(R3, one-iteration run) = %g, want > 0", d)
	}
	dSelf, err := Distance(r3, r3, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if dSelf != 0 {
		t.Fatalf("δ(R3,R3) = %g, want 0", dSelf)
	}
}

// multiEdgeChainSpec builds the unstable-match construction: a top
// parallel node with branch B = single edge (s,t) and branch A =
// s -> m1 -> ... -> m(k-1) -> t where each consecutive hop has two
// parallel edges.
func multiEdgeChainSpec(t *testing.T, k int) *spec.Spec {
	t.Helper()
	g := graph.New()
	g.MustAddNode("s", "s")
	g.MustAddNode("t", "t")
	prev := graph.NodeID("s")
	for i := 1; i < k; i++ {
		id := graph.NodeID("m" + string(rune('0'+i)))
		g.MustAddNode(id, string(id))
		g.MustAddEdge(prev, id)
		g.MustAddEdge(prev, id)
		prev = id
	}
	g.MustAddEdge(prev, "t")
	g.MustAddEdge(prev, "t")
	g.MustAddEdge("s", "t") // branch B
	sp, err := spec.New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// chainDecider picks, at every 2-way parallel choice below the top
// node, the branch with the given index, and only branch A at the top.
type chainDecider struct{ pick int }

func (d chainDecider) ParallelSubset(p *sptree.Node) []int {
	if len(p.Children) == 2 && p.Children[0].Type == sptree.Q && p.Children[1].Type == sptree.Q &&
		p.Children[0].Edge.From == p.Children[1].Edge.From {
		// A multi-edge hop: pick one of the two parallel edges.
		return []int{d.pick}
	}
	// Top-level P: pick branch A (the S child).
	for i, c := range p.Children {
		if c.Type == sptree.S {
			return []int{i}
		}
	}
	return []int{0}
}
func (chainDecider) ForkCopies(*sptree.Node) int     { return 1 }
func (chainDecider) LoopIterations(*sptree.Node) int { return 1 }

// TestUnstableMatch exercises Definition 5.2 / Eq. 2: when the two
// runs take the same single parallel branch but differ in every hop,
// wholesale delete+insert with a scratch branch (cost 4 under unit
// cost) beats hop-by-hop editing (cost 2k).
func TestUnstableMatch(t *testing.T) {
	sp := multiEdgeChainSpec(t, 4)
	r1, err := wfrun.Execute(sp, chainDecider{pick: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wfrun.Execute(sp, chainDecider{pick: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 4 {
		t.Fatalf("unstable distance = %g, want 4 (insert scratch, delete old, insert new, delete scratch)", res.Distance)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if script.TotalCost() != res.Distance {
		t.Fatalf("script cost %g != distance %g\n%s", script.TotalCost(), res.Distance, script)
	}
	temps := 0
	for _, op := range script.Ops {
		if op.Temporary {
			temps++
		}
	}
	if temps != 2 {
		t.Fatalf("expected one scratch insert/delete pair, got %d temporary ops:\n%s", temps, script)
	}
	if !sptree.EquivalentRuns(final, r2.Tree) {
		t.Fatal("unstable script did not produce T2")
	}
}

// hopDecider picks parallel edge 1 only at hops leaving the node
// labeled "s", edge 0 elsewhere; used to build a run differing from
// the all-zeros run in a single hop.
type hopDecider struct{ base chainDecider }

func (d hopDecider) ParallelSubset(p *sptree.Node) []int {
	if len(p.Children) == 2 && p.Children[0].Type == sptree.Q && p.Children[1].Type == sptree.Q &&
		p.Children[0].Edge.From == p.Children[1].Edge.From {
		if p.Src == "s" {
			return []int{1}
		}
		return []int{0}
	}
	return d.base.ParallelSubset(p)
}
func (d hopDecider) ForkCopies(n *sptree.Node) int     { return d.base.ForkCopies(n) }
func (d hopDecider) LoopIterations(n *sptree.Node) int { return d.base.LoopIterations(n) }

// TestStableWhenChainShort verifies the flip side of the unstable
// case: when the runs differ in just one hop of the chain, editing
// that hop (cost 2) beats the scratch workaround (cost 4), so the
// children stay stably matched.
func TestStableWhenChainShort(t *testing.T) {
	sp := multiEdgeChainSpec(t, 2)
	r1, err := wfrun.Execute(sp, chainDecider{pick: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wfrun.Execute(sp, hopDecider{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("distance = %g, want 2", d)
	}
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if script.TotalCost() != 2 {
		t.Fatalf("script cost %g, want 2\n%s", script.TotalCost(), script)
	}
	if !sptree.EquivalentRuns(final, r2.Tree) {
		t.Fatal("stable script did not produce T2")
	}
}

// randRuns builds a pool of random runs of the Fig. 2 specification
// (with loops) for the metric property tests.
func randRuns(t *testing.T, sp *spec.Spec, n int, seed int64) []*wfrun.Run {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dec := &randomDecider{rng: rng}
	out := make([]*wfrun.Run, n)
	for i := range out {
		r, err := wfrun.Execute(sp, dec)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

type randomDecider struct{ rng *rand.Rand }

func (d *randomDecider) ParallelSubset(p *sptree.Node) []int {
	var subset []int
	for i := range p.Children {
		if d.rng.Intn(100) < 65 {
			subset = append(subset, i)
		}
	}
	if len(subset) == 0 {
		subset = []int{d.rng.Intn(len(p.Children))}
	}
	return subset
}
func (d *randomDecider) ForkCopies(*sptree.Node) int     { return 1 + d.rng.Intn(3) }
func (d *randomDecider) LoopIterations(*sptree.Node) int { return 1 + d.rng.Intn(3) }

func TestMetricProperties(t *testing.T) {
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}} {
		sp := fixtures.Fig2SpecWithLoop()
		runs := randRuns(t, sp, 6, 7)
		dist := func(a, b *wfrun.Run) float64 {
			d, err := Distance(a, b, m)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		for i := range runs {
			if d := dist(runs[i], runs[i]); d != 0 {
				t.Fatalf("%s: δ(R,R) = %g", m.Name(), d)
			}
			for j := i + 1; j < len(runs); j++ {
				dij, dji := dist(runs[i], runs[j]), dist(runs[j], runs[i])
				if math.Abs(dij-dji) > 1e-9 {
					t.Fatalf("%s: asymmetric: δ(i,j)=%g δ(j,i)=%g", m.Name(), dij, dji)
				}
				for k := 0; k < len(runs); k++ {
					dik, dkj := dist(runs[i], runs[k]), dist(runs[k], runs[j])
					if dij > dik+dkj+1e-9 {
						t.Fatalf("%s: triangle violated: δ(i,j)=%g > δ(i,k)+δ(k,j)=%g",
							m.Name(), dij, dik+dkj)
					}
				}
			}
		}
	}
}

func TestScriptPropertiesRandom(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	runs := randRuns(t, sp, 10, 21)
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}} {
		for i := 0; i < len(runs); i++ {
			for j := 0; j < len(runs); j++ {
				res, err := Diff(runs[i], runs[j], m)
				if err != nil {
					t.Fatal(err)
				}
				script, final, err := res.Script()
				if err != nil {
					t.Fatalf("%s runs %d->%d: %v", m.Name(), i, j, err)
				}
				if math.Abs(script.TotalCost()-res.Distance) > 1e-9 {
					t.Fatalf("%s runs %d->%d: script cost %g != distance %g\n%s",
						m.Name(), i, j, script.TotalCost(), res.Distance, script)
				}
				if !sptree.EquivalentRuns(final, runs[j].Tree) {
					t.Fatalf("%s runs %d->%d: script result is not R_j\n-- final:\n%s\n-- want:\n%s",
						m.Name(), i, j, final, runs[j].Tree)
				}
				if err := sptree.ValidateRunTree(final, sp.Tree); err != nil {
					t.Fatalf("%s runs %d->%d: final tree invalid: %v", m.Name(), i, j, err)
				}
			}
		}
	}
}

func TestMappingWellFormed(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	mapping := res.Mapping()
	if len(mapping) == 0 || mapping[0][0] != r1.Tree || mapping[0][1] != r2.Tree {
		t.Fatal("mapping must start with the root pair")
	}
	seen1 := map[*sptree.Node]bool{}
	seen2 := map[*sptree.Node]bool{}
	for _, p := range mapping {
		if seen1[p[0]] || seen2[p[1]] {
			t.Fatal("mapping is not one-to-one")
		}
		seen1[p[0]], seen2[p[1]] = true, true
		if p[0].Spec != p[1].Spec {
			t.Fatal("mapped nodes are not homologous")
		}
		if p[0].Parent != nil && (!seen1[p[0].Parent] || !seen2[p[1].Parent]) {
			t.Fatal("parents of mapped pair not mapped (or visited out of order)")
		}
	}
}

func TestDeletionCostUnitHandChecks(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	d := newDeleter(cost.Unit{})
	// Deleting the whole (branch-free after reducing forks) run:
	// R1's tree has an F(2,3,6) with two copies (1 extra deletion)
	// plus the middle P with two branches (1 extra), then one final
	// path deletion: X(root) = 3 under unit cost.
	if got := d.X(r1.Tree); got != 3 {
		t.Fatalf("X(T1 root) = %g, want 3", got)
	}
	// A single Q leaf costs γ(1) = 1.
	q := r1.Tree.Leaves()[0]
	if got := d.X(q); got != 1 {
		t.Fatalf("X(leaf) = %g, want 1", got)
	}
}

func TestEvaluateScriptAcrossModels(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	script, _, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if got := EvaluateScript(script, cost.Unit{}); math.Abs(got-res.Distance) > 1e-9 {
		t.Fatalf("re-evaluating under the same model: %g != %g", got, res.Distance)
	}
	under := EvaluateScript(script, cost.Length{})
	lengthOpt, err := Distance(r1, r2, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	if under < lengthOpt-1e-9 {
		t.Fatalf("a unit-optimal script cannot beat the length-optimal distance: %g < %g", under, lengthOpt)
	}
}

func TestPlanReduceReconstruction(t *testing.T) {
	// The deletion plan of any subtree, applied step by step, must
	// cost exactly X(v) and leave a branch-free subtree of the
	// planned size.
	sp := fixtures.Fig2SpecWithLoop()
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}} {
		// Fresh runs per model: executing the plan mutates the trees.
		runs := randRuns(t, sp, 5, 5)
		for _, r := range runs {
			d := newDeleter(m)
			want := d.X(r.Tree)
			var plan []*sptree.Node
			d.planDelete(r.Tree, &plan)
			total := 0.0
			for _, v := range plan {
				total += m.PathCost(v.CountLeaves(), v.Src, v.Dst)
				// Detach children that were planned for deletion:
				// simulate by removing from parent when present.
				if v.Parent != nil {
					v.Parent.RemoveChild(v.Parent.ChildIndex(v))
				}
			}
			if math.Abs(total-want) > 1e-9 {
				t.Fatalf("%s: plan cost %g != X %g", m.Name(), total, want)
			}
		}
	}
}
