package core

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/fixtures"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// iterDecider runs the Fig. 2 loop a fixed number of iterations,
// taking only the (2,4,6) branch inside each iteration so iterations
// are minimal and identical.
type iterDecider struct{ iters int }

func (d iterDecider) ParallelSubset(p *sptree.Node) []int {
	// Pick the branch whose fork covers edge (2,4).
	for i, c := range p.Children {
		for _, leaf := range c.Leaves() {
			if leaf.Edge.From == "2" && leaf.Edge.To == "4" {
				return []int{i}
			}
		}
	}
	return []int{0}
}
func (d iterDecider) ForkCopies(*sptree.Node) int     { return 1 }
func (d iterDecider) LoopIterations(*sptree.Node) int { return d.iters }

// TestLoopIterationDistance: adding k iterations of a minimal loop
// body costs exactly k path expansions under the unit cost model, and
// the script marks them as loop operations.
func TestLoopIterationDistance(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	two, err := wfrun.Execute(sp, iterDecider{iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	five, err := wfrun.Execute(sp, iterDecider{iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diff(two, five, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 3 {
		t.Fatalf("distance = %g, want 3 (three iteration expansions)", res.Distance)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	loopOps := 0
	for _, op := range script.Ops {
		if op.LoopOp {
			loopOps++
			if op.Kind != edit.Insert {
				t.Fatalf("expected insertions (expansions), got %v", op)
			}
		}
	}
	if loopOps != 3 {
		t.Fatalf("loop ops = %d, want 3\n%s", loopOps, script)
	}
	if !sptree.EquivalentRuns(final, five.Tree) {
		t.Fatal("script did not produce the five-iteration run")
	}
	// And the reverse direction contracts three iterations.
	back, err := Diff(five, two, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Distance != 3 {
		t.Fatalf("reverse distance = %g, want 3", back.Distance)
	}
}

// TestLoopOrderMatters: the non-crossing matching of Algorithm 6 must
// respect iteration order. Build runs whose iterations differ in
// content: R1 = [A, B], R2 = [B, A] where A and B are distinguishable
// iteration bodies. A crossing matching would pair A-A and B-B for
// free; the non-crossing optimum must pay.
func TestLoopOrderMatters(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()

	mk := func(order []string) *wfrun.Run {
		d := &orderDecider{order: order}
		r, err := wfrun.Execute(sp, d)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ab := mk([]string{"3", "4"}) // iteration 1 takes branch 3, iteration 2 branch 4
	ba := mk([]string{"4", "3"})
	aa := mk([]string{"3", "3"})

	dSame, err := Distance(ab, ab, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if dSame != 0 {
		t.Fatalf("identical iteration orders should be distance 0, got %g", dSame)
	}
	dSwap, err := Distance(ab, ba, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if dSwap == 0 {
		t.Fatal("swapped iteration order must cost something (non-crossing matching)")
	}
	dHalf, err := Distance(ab, aa, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if dHalf == 0 || dHalf > dSwap+1e-9 {
		t.Fatalf("changing one iteration (%g) should not cost more than swapping both (%g)", dHalf, dSwap)
	}
	if math.IsInf(dSwap, 1) {
		t.Fatal("distance must be finite")
	}
}

// orderDecider takes branch order[i] in the i-th loop iteration. The
// loop body contains exactly one P node, so counting ParallelSubset
// calls identifies the iteration.
type orderDecider struct {
	order []string
	calls int
}

func (d *orderDecider) ParallelSubset(p *sptree.Node) []int {
	want := "3"
	if d.calls < len(d.order) {
		want = d.order[d.calls]
	}
	d.calls++
	for i, c := range p.Children {
		for _, leaf := range c.Leaves() {
			if leaf.Edge.From == "2" && string(leaf.Edge.To) == want {
				return []int{i}
			}
		}
	}
	return []int{0}
}
func (d *orderDecider) ForkCopies(*sptree.Node) int { return 1 }
func (d *orderDecider) LoopIterations(l *sptree.Node) int {
	return len(d.order)
}
