package core

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/match"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// decision records the outcome of the minimum-cost well-formed mapping
// computation for one pair of homologous nodes (v1, v2): its cost
// γ(M(v1, v2)) and which of their children are matched.
type decision struct {
	cost     float64
	pairs    [][2]*sptree.Node // matched child pairs
	unstable bool              // Definition 5.2: P pair whose single homologous children stay unmatched
}

type pairKey [2]*sptree.Node

// differ carries the state of one Diff computation.
type differ struct {
	sp          *spec.Spec
	model       cost.Model
	del1, del2  *deleter
	memo        map[pairKey]*decision
	wMemo       map[pairKey]float64
	leafPenalty func(q1, q2 *sptree.Node) float64
}

// Option configures Diff.
type Option func(*differ)

// WithLeafPenalty makes data a factor in the matching (Section I:
// "It is a factor in the matching between nodes in the executions"):
// fn is added to the mapping cost of every matched pair of Q leaves,
// so copies whose data disagree are steered apart when re-pairing is
// cheaper. fn must be non-negative. With a leaf penalty installed,
// Result.Distance is the penalized mapping objective; the edit script
// still realizes the chosen mapping, but its operation cost equals
// Distance minus the penalties of matched leaves.
func WithLeafPenalty(fn func(q1, q2 *sptree.Node) float64) Option {
	return func(df *differ) { df.leafPenalty = fn }
}

// Result is the outcome of differencing two runs.
type Result struct {
	// Distance is the edit distance δ(R1, R2).
	Distance float64

	r1, r2 *wfrun.Run
	df     *differ
}

// Diff computes the edit distance between two valid runs of the same
// specification under the given cost model (Algorithms 3, 4 and 6).
// The returned Result can additionally produce the minimum-cost edit
// script and the underlying well-formed mapping.
func Diff(r1, r2 *wfrun.Run, m cost.Model, opts ...Option) (*Result, error) {
	if r1.Spec != r2.Spec {
		return nil, fmt.Errorf("core: runs belong to different specifications")
	}
	if r1.Tree == nil || r2.Tree == nil {
		return nil, fmt.Errorf("core: runs lack annotated SP-trees")
	}
	df := &differ{
		sp:    r1.Spec,
		model: m,
		del1:  newDeleter(m),
		del2:  newDeleter(m),
		memo:  make(map[pairKey]*decision),
		wMemo: make(map[pairKey]float64),
	}
	for _, opt := range opts {
		opt(df)
	}
	dec := df.c(r1.Tree, r2.Tree)
	return &Result{Distance: dec.cost, r1: r1, r2: r2, df: df}, nil
}

// Distance is a convenience wrapper returning only δ(R1, R2).
func Distance(r1, r2 *wfrun.Run, m cost.Model) (float64, error) {
	res, err := Diff(r1, r2, m)
	if err != nil {
		return 0, err
	}
	return res.Distance, nil
}

// Mapping returns the minimum-cost well-formed mapping as pairs of
// (T1 node, T2 node), including the root pair, in preorder of T1.
func (r *Result) Mapping() [][2]*sptree.Node {
	var out [][2]*sptree.Node
	var rec func(v1, v2 *sptree.Node)
	rec = func(v1, v2 *sptree.Node) {
		out = append(out, [2]*sptree.Node{v1, v2})
		dec := r.df.memo[pairKey{v1, v2}]
		for _, p := range dec.pairs {
			rec(p[0], p[1])
		}
	}
	rec(r.r1.Tree, r.r2.Tree)
	return out
}

// c computes γ(M(v1, v2)) for homologous nodes, memoized (Algorithm 4
// plus the L case of Algorithm 6).
func (df *differ) c(v1, v2 *sptree.Node) *decision {
	key := pairKey{v1, v2}
	if dec, ok := df.memo[key]; ok {
		return dec
	}
	if v1.Spec != v2.Spec {
		panic("core: c called on non-homologous nodes")
	}
	var dec *decision
	switch v1.Type {
	case sptree.Q:
		dec = &decision{}
		if df.leafPenalty != nil {
			dec.cost = df.leafPenalty(v1, v2)
		}

	case sptree.S:
		// Case 2: children of mapped S nodes are preserved pairwise.
		dec = &decision{}
		for i := range v1.Children {
			c1, c2 := v1.Children[i], v2.Children[i]
			dec.cost += df.c(c1, c2).cost
			dec.pairs = append(dec.pairs, [2]*sptree.Node{c1, c2})
		}

	case sptree.P:
		dec = df.parallelCase(v1, v2)

	case sptree.F:
		dec = df.matchCase(v1, v2, false)

	case sptree.L:
		dec = df.matchCase(v1, v2, true)

	default:
		panic(fmt.Sprintf("core: unknown node type %s", v1.Type))
	}
	df.memo[key] = dec
	return dec
}

// parallelCase handles P node pairs: Case 3a (single homologous
// children, possibly unstably matched) and Case 3b (children paired by
// specification branch, each pair kept only if cheaper than
// delete+insert).
func (df *differ) parallelCase(v1, v2 *sptree.Node) *decision {
	if len(v1.Children) == 1 && len(v2.Children) == 1 &&
		v1.Children[0].Spec == v2.Children[0].Spec {
		c1, c2 := v1.Children[0], v2.Children[0]
		mapped := df.c(c1, c2).cost
		swap := df.del1.X(c1) + df.del2.X(c2) + 2*df.w(v1.Spec, c1.Spec)
		if mapped <= swap {
			return &decision{cost: mapped, pairs: [][2]*sptree.Node{{c1, c2}}}
		}
		return &decision{cost: swap, unstable: true}
	}
	by1 := make(map[*sptree.Node]*sptree.Node, len(v1.Children))
	for _, c := range v1.Children {
		by1[c.Spec] = c
	}
	dec := &decision{}
	for _, c2 := range v2.Children {
		c1, ok := by1[c2.Spec]
		if !ok {
			dec.cost += df.del2.X(c2)
			continue
		}
		mapped := df.c(c1, c2).cost
		apart := df.del1.X(c1) + df.del2.X(c2)
		if mapped <= apart {
			dec.cost += mapped
			dec.pairs = append(dec.pairs, [2]*sptree.Node{c1, c2})
		} else {
			dec.cost += apart
		}
		delete(by1, c2.Spec)
	}
	for _, c1 := range by1 {
		dec.cost += df.del1.X(c1)
	}
	return dec
}

// matchCase handles F nodes (minimum-cost bipartite matching over
// copies, Case 4 / Fig. 9) and L nodes (minimum-cost non-crossing
// bipartite matching over ordered iterations, Algorithm 6).
func (df *differ) matchCase(v1, v2 *sptree.Node, ordered bool) *decision {
	m, n := len(v1.Children), len(v2.Children)
	pair := func(i, j int) float64 { return df.c(v1.Children[i], v2.Children[j]).cost }
	del := func(i int) float64 { return df.del1.X(v1.Children[i]) }
	ins := func(j int) float64 { return df.del2.X(v2.Children[j]) }
	var res match.Result
	if ordered {
		res = match.NonCrossing(m, n, pair, del, ins)
	} else {
		res = match.Bipartite(m, n, pair, del, ins)
	}
	dec := &decision{cost: res.Cost}
	for _, p := range res.Pairs {
		dec.pairs = append(dec.pairs, [2]*sptree.Node{v1.Children[p[0]], v2.Children[p[1]]})
	}
	return dec
}

// w computes W_TG(a, b): the minimum cost of inserting (or deleting)
// an elementary subtree rooted at a child of specification node a that
// is distinct from the subtree rooted at specification node b
// (Section V-A, Eq. 2). a is the specification P node of an unstably
// matched pair; candidate subtrees range over the branch-free
// executions of a's other children.
func (df *differ) w(a, b *sptree.Node) float64 {
	key := pairKey{a, b}
	if v, ok := df.wMemo[key]; ok {
		return v
	}
	best := inf
	for _, c := range a.Children {
		if c == b {
			continue
		}
		for _, l := range df.sp.AchievableLengths(c) {
			if cand := df.model.PathCost(l, a.Src, a.Dst); cand < best {
				best = cand
			}
		}
	}
	df.wMemo[key] = best
	return best
}

// minSkeleton returns, for the unstable workaround, the specification
// child of a (other than b) and the branch-free execution length
// realizing W_TG(a, b).
func (df *differ) minSkeleton(a, b *sptree.Node) (*sptree.Node, int) {
	best := inf
	var bestChild *sptree.Node
	bestLen := 0
	for _, c := range a.Children {
		if c == b {
			continue
		}
		for _, l := range df.sp.AchievableLengths(c) {
			if cand := df.model.PathCost(l, a.Src, a.Dst); cand < best {
				best = cand
				bestChild = c
				bestLen = l
			}
		}
	}
	return bestChild, bestLen
}

// DeletionCost computes X(v) of Algorithm 3 — the minimum cost of
// deleting the run subtree rooted at v — under the given cost model.
// Exposed for baselines and cross-validation oracles.
func DeletionCost(v *sptree.Node, m cost.Model) float64 {
	return newDeleter(m).X(v)
}
