package core

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/match"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// decision records the outcome of the minimum-cost well-formed mapping
// computation for one pair of homologous nodes (v1, v2): its cost
// γ(M(v1, v2)) and which of their children are matched. Matched child
// pairs live in the engine's pair arena as the span [off, off+n).
type decision struct {
	cost     float64
	off, n   int32
	unstable bool // Definition 5.2: P pair whose single homologous children stay unmatched
}

// Engine computes edit distances between valid runs of one (or many)
// specifications, reusing all interior state between calls: the
// memoization tables of Algorithms 3, 4 and 6 are flat slices indexed
// by the dense preorder IDs of sptree.Index rather than pointer-keyed
// maps, matched pairs are stored in a shared arena, and the matching
// primitives run on a reusable match.Scratch. A batch of k diffs
// therefore performs O(1) steady-state allocation instead of O(k·n²)
// map churn; the W_TG memo even persists across calls that share a
// specification.
//
// An Engine is NOT safe for concurrent use — give each goroutine its
// own (analysis.DistanceMatrix creates one per worker). Results
// returned by Diff borrow the engine's tables: their Distance is
// always valid, but Mapping and Script must be extracted before the
// same engine runs another Diff.
type Engine struct {
	model       cost.Model
	leafPenalty func(q1, q2 *sptree.Node) float64

	// Per-specification state, reset when the specification changes.
	sp    *spec.Spec
	specN int
	wMemo []float64 // specN×specN flat W_TG memo; NaN = uncomputed

	// Per-call scratch, reset by Diff.
	gen        uint32
	idx1, idx2 sptree.TreeIndex
	blockOff   []int // per homology class: offset of its memo block
	memo       []decision
	memoGen    []uint32
	pairArena  [][2]*sptree.Node
	del1, del2 *deleter

	rows, delCost, insCost []float64 // matchCase staging
	ms                     match.Scratch
}

// Option configures an Engine (and thus Diff).
type Option func(*Engine)

// WithLeafPenalty makes data a factor in the matching (Section I:
// "It is a factor in the matching between nodes in the executions"):
// fn is added to the mapping cost of every matched pair of Q leaves,
// so copies whose data disagree are steered apart when re-pairing is
// cheaper. fn must be non-negative. With a leaf penalty installed,
// Result.Distance is the penalized mapping objective; the edit script
// still realizes the chosen mapping, but its operation cost equals
// Distance minus the penalties of matched leaves.
func WithLeafPenalty(fn func(q1, q2 *sptree.Node) float64) Option {
	return func(e *Engine) { e.leafPenalty = fn }
}

// NewEngine returns a reusable differencing engine for the given cost
// model.
func NewEngine(m cost.Model, opts ...Option) *Engine {
	e := &Engine{model: m, del1: newDeleter(m), del2: newDeleter(m)}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Result is the outcome of differencing two runs.
type Result struct {
	// Distance is the edit distance δ(R1, R2).
	Distance float64

	r1, r2 *wfrun.Run
	eng    *Engine
	gen    uint32
}

// Diff computes the edit distance between two valid runs of the same
// specification under the given cost model (Algorithms 3, 4 and 6).
// The returned Result can additionally produce the minimum-cost edit
// script and the underlying well-formed mapping. Each call builds a
// fresh Engine, so the Result stays valid indefinitely; batch callers
// should construct one Engine and call its Diff instead.
func Diff(r1, r2 *wfrun.Run, m cost.Model, opts ...Option) (*Result, error) {
	return NewEngine(m, opts...).Diff(r1, r2)
}

// Distance is a convenience wrapper returning only δ(R1, R2).
func Distance(r1, r2 *wfrun.Run, m cost.Model) (float64, error) {
	res, err := Diff(r1, r2, m)
	if err != nil {
		return 0, err
	}
	return res.Distance, nil
}

// Diff computes the edit distance between two valid runs of the same
// specification, reusing the engine's scratch tables. The previous
// Result of this engine is invalidated for Mapping/Script extraction
// (its Distance remains usable).
func (e *Engine) Diff(r1, r2 *wfrun.Run) (*Result, error) {
	if r1.Spec != r2.Spec {
		return nil, fmt.Errorf("core: runs belong to different specifications")
	}
	if r1.Tree == nil || r2.Tree == nil {
		return nil, fmt.Errorf("core: runs lack annotated SP-trees")
	}
	if e.sp != r1.Spec {
		e.sp = r1.Spec
		e.specN = e.sp.Tree.CountNodes()
		e.wMemo = growRow(e.wMemo, e.specN*e.specN)
		for i := range e.wMemo {
			e.wMemo[i] = math.NaN()
		}
	}
	e.gen++
	if e.gen == 0 { // uint32 wrap: flush every stamp explicitly
		for i := range e.memoGen {
			e.memoGen[i] = 0
		}
		e.gen = 1
	}
	e.idx1.Rebuild(r1.Tree)
	e.idx2.Rebuild(r2.Tree)
	// Lay the memo out as one block per homology class: class s gets a
	// k1(s)×k2(s) sub-matrix, so total size is the number of
	// homologous pairs, not |T1|·|T2|.
	e.blockOff = growRow(e.blockOff, e.specN)
	total := 0
	for s := 0; s < e.specN; s++ {
		e.blockOff[s] = total
		total += e.idx1.Class(s) * e.idx2.Class(s)
	}
	if cap(e.memo) < total {
		e.memo = make([]decision, total)
		e.memoGen = make([]uint32, total)
	} else {
		e.memo = e.memo[:total]
		e.memoGen = e.memoGen[:total]
	}
	e.pairArena = e.pairArena[:0]
	e.del1.reset(e.idx1.Len())
	e.del2.reset(e.idx2.Len())
	dec := e.c(r1.Tree, r2.Tree)
	return &Result{Distance: dec.cost, r1: r1, r2: r2, eng: e, gen: e.gen}, nil
}

// Distance reuses the engine to return only δ(R1, R2).
func (e *Engine) Distance(r1, r2 *wfrun.Run) (float64, error) {
	res, err := e.Diff(r1, r2)
	if err != nil {
		return 0, err
	}
	return res.Distance, nil
}

// memoIndex maps a homologous pair to its memo slot: the pair's class
// block plus (rank in T1) × (class size in T2) + (rank in T2).
func (e *Engine) memoIndex(v1, v2 *sptree.Node) int {
	s := int(e.idx1.SpecID[v1.ID])
	return e.blockOff[s] + int(e.idx1.ClassRank[v1.ID])*e.idx2.Class(s) + int(e.idx2.ClassRank[v2.ID])
}

// pairsOf returns the matched child pairs of a decision from the
// engine's arena.
func (e *Engine) pairsOf(dec *decision) [][2]*sptree.Node {
	return e.pairArena[dec.off : dec.off+dec.n]
}

// lookup returns the memoized decision for a pair, or nil if the last
// Diff never computed it.
func (e *Engine) lookup(v1, v2 *sptree.Node) *decision {
	if v1.Spec == nil || v1.Spec != v2.Spec {
		return nil
	}
	mi := e.memoIndex(v1, v2)
	if e.memoGen[mi] != e.gen {
		return nil
	}
	return &e.memo[mi]
}

// check panics unless the Result belongs to the engine's latest Diff.
func (r *Result) check() {
	if r.gen != r.eng.gen {
		panic("core: Result used after its Engine ran another Diff; extract Mapping/Script before reusing the Engine")
	}
}

// Mapping returns the minimum-cost well-formed mapping as pairs of
// (T1 node, T2 node), including the root pair, in preorder of T1.
func (r *Result) Mapping() [][2]*sptree.Node {
	r.check()
	e := r.eng
	var out [][2]*sptree.Node
	var rec func(v1, v2 *sptree.Node)
	rec = func(v1, v2 *sptree.Node) {
		out = append(out, [2]*sptree.Node{v1, v2})
		dec := e.lookup(v1, v2)
		for _, p := range e.pairsOf(dec) {
			rec(p[0], p[1])
		}
	}
	rec(r.r1.Tree, r.r2.Tree)
	return out
}

// c computes γ(M(v1, v2)) for homologous nodes, memoized (Algorithm 4
// plus the L case of Algorithm 6).
func (e *Engine) c(v1, v2 *sptree.Node) *decision {
	if v1.Spec == nil || v1.Spec != v2.Spec {
		panic("core: c called on non-homologous nodes")
	}
	mi := e.memoIndex(v1, v2)
	dec := &e.memo[mi]
	if e.memoGen[mi] == e.gen {
		return dec
	}
	*dec = decision{}
	switch v1.Type {
	case sptree.Q:
		if e.leafPenalty != nil {
			dec.cost = e.leafPenalty(v1, v2)
		}

	case sptree.S:
		// Case 2: children of mapped S nodes are preserved pairwise.
		// Child decisions are forced first so the arena appends below
		// form one contiguous span.
		sum := 0.0
		for i := range v1.Children {
			sum += e.c(v1.Children[i], v2.Children[i]).cost
		}
		off := int32(len(e.pairArena))
		for i := range v1.Children {
			e.pairArena = append(e.pairArena, [2]*sptree.Node{v1.Children[i], v2.Children[i]})
		}
		dec.cost, dec.off, dec.n = sum, off, int32(len(v1.Children))

	case sptree.P:
		e.parallelCase(v1, v2, dec)

	case sptree.F:
		e.matchCase(v1, v2, false, dec)

	case sptree.L:
		e.matchCase(v1, v2, true, dec)

	default:
		panic(fmt.Sprintf("core: unknown node type %s", v1.Type))
	}
	e.memoGen[mi] = e.gen
	return dec
}

// parallelCase handles P node pairs: Case 3a (single homologous
// children, possibly unstably matched) and Case 3b (children paired by
// specification branch, each pair kept only if cheaper than
// delete+insert).
func (e *Engine) parallelCase(v1, v2 *sptree.Node, dec *decision) {
	if len(v1.Children) == 1 && len(v2.Children) == 1 &&
		v1.Children[0].Spec == v2.Children[0].Spec {
		c1, c2 := v1.Children[0], v2.Children[0]
		mapped := e.c(c1, c2).cost
		swap := e.del1.X(c1) + e.del2.X(c2) + 2*e.w(v1.Spec, c1.Spec)
		if mapped <= swap {
			dec.cost = mapped
			dec.off = int32(len(e.pairArena))
			dec.n = 1
			e.pairArena = append(e.pairArena, [2]*sptree.Node{c1, c2})
			return
		}
		dec.cost = swap
		dec.unstable = true
		return
	}
	by1 := make(map[*sptree.Node]*sptree.Node, len(v1.Children))
	for _, c := range v1.Children {
		by1[c.Spec] = c
	}
	// Force child decisions first: the decide loop below then appends
	// matched pairs to the arena without interleaved recursion.
	for _, c2 := range v2.Children {
		if c1, ok := by1[c2.Spec]; ok {
			e.c(c1, c2)
		}
	}
	off := int32(len(e.pairArena))
	for _, c2 := range v2.Children {
		c1, ok := by1[c2.Spec]
		if !ok {
			dec.cost += e.del2.X(c2)
			continue
		}
		mapped := e.c(c1, c2).cost
		apart := e.del1.X(c1) + e.del2.X(c2)
		if mapped <= apart {
			dec.cost += mapped
			e.pairArena = append(e.pairArena, [2]*sptree.Node{c1, c2})
			dec.n++
		} else {
			dec.cost += apart
		}
		delete(by1, c2.Spec)
	}
	dec.off = off
	// Unpaired T1 branches, in deterministic child order (the old
	// map-ordered iteration summed the same values nondeterministically).
	for _, c1 := range v1.Children {
		if by1[c1.Spec] == c1 {
			dec.cost += e.del1.X(c1)
		}
	}
}

// matchCase handles F nodes (minimum-cost bipartite matching over
// copies, Case 4 / Fig. 9) and L nodes (minimum-cost non-crossing
// bipartite matching over ordered iterations, Algorithm 6). Child
// decisions are forced before the engine's shared staging rows are
// touched, so the rows are never live across recursion.
func (e *Engine) matchCase(v1, v2 *sptree.Node, ordered bool, dec *decision) {
	m, n := len(v1.Children), len(v2.Children)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			e.c(v1.Children[i], v2.Children[j])
		}
	}
	if cap(e.rows) < m*n {
		e.rows = make([]float64, m*n)
	}
	rows := e.rows[:m*n]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			rows[i*n+j] = e.c(v1.Children[i], v2.Children[j]).cost
		}
	}
	if cap(e.delCost) < m {
		e.delCost = make([]float64, m)
	}
	dels := e.delCost[:m]
	for i := 0; i < m; i++ {
		dels[i] = e.del1.X(v1.Children[i])
	}
	if cap(e.insCost) < n {
		e.insCost = make([]float64, n)
	}
	inss := e.insCost[:n]
	for j := 0; j < n; j++ {
		inss[j] = e.del2.X(v2.Children[j])
	}
	var res match.Result
	if ordered {
		res = e.ms.NonCrossing(m, n, rows, dels, inss)
	} else {
		res = e.ms.Bipartite(m, n, rows, dels, inss)
	}
	dec.cost = res.Cost
	dec.off = int32(len(e.pairArena))
	dec.n = int32(len(res.Pairs))
	for _, p := range res.Pairs {
		e.pairArena = append(e.pairArena, [2]*sptree.Node{v1.Children[p[0]], v2.Children[p[1]]})
	}
}

// w computes W_TG(a, b): the minimum cost of inserting (or deleting)
// an elementary subtree rooted at a child of specification node a that
// is distinct from the subtree rooted at specification node b
// (Section V-A, Eq. 2). a is the specification P node of an unstably
// matched pair; candidate subtrees range over the branch-free
// executions of a's other children. The memo is keyed by specification
// IDs and survives across Diff calls sharing a specification.
func (e *Engine) w(a, b *sptree.Node) float64 {
	wi := a.ID*e.specN + b.ID
	if v := e.wMemo[wi]; !math.IsNaN(v) {
		return v
	}
	best := inf
	for _, c := range a.Children {
		if c == b {
			continue
		}
		for _, l := range e.sp.AchievableLengths(c) {
			if cand := e.model.PathCost(l, a.Src, a.Dst); cand < best {
				best = cand
			}
		}
	}
	e.wMemo[wi] = best
	return best
}

// minSkeleton returns, for the unstable workaround, the specification
// child of a (other than b) and the branch-free execution length
// realizing W_TG(a, b).
func (e *Engine) minSkeleton(a, b *sptree.Node) (*sptree.Node, int) {
	best := inf
	var bestChild *sptree.Node
	bestLen := 0
	for _, c := range a.Children {
		if c == b {
			continue
		}
		for _, l := range e.sp.AchievableLengths(c) {
			if cand := e.model.PathCost(l, a.Src, a.Dst); cand < best {
				best = cand
				bestChild = c
				bestLen = l
			}
		}
	}
	return bestChild, bestLen
}

// DeletionCost computes X(v) of Algorithm 3 — the minimum cost of
// deleting the run subtree rooted at v — under the given cost model.
// Exposed for baselines and cross-validation oracles.
func DeletionCost(v *sptree.Node, m cost.Model) float64 {
	return newDeleter(m).X(v)
}
