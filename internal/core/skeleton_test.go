package core

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// deepSkeletonSpec builds a specification where the unstable-match
// workaround must synthesize a *structured* scratch subtree: branch A
// is a 4-hop chain of parallel edge pairs (expensive to edit hop by
// hop), branch B is a two-edge path whose second hop is a parallel
// pair with one side forked — so the scratch skeleton for B passes
// through the S, P and F cases of the builder.
func deepSkeletonSpec(t *testing.T) *spec.Spec {
	t.Helper()
	g := graph.New()
	for _, n := range []string{"s", "m1", "m2", "m3", "x", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	chain := []string{"s", "m1", "m2", "m3", "t"}
	for i := 0; i+1 < len(chain); i++ {
		g.MustAddEdge(graph.NodeID(chain[i]), graph.NodeID(chain[i+1]))
		g.MustAddEdge(graph.NodeID(chain[i]), graph.NodeID(chain[i+1]))
	}
	g.MustAddEdge("s", "x")
	xt0 := g.MustAddEdge("x", "t")
	g.MustAddEdge("x", "t")
	sp, err := spec.New(g, []spec.EdgeSet{{xt0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// pickA executes only branch A, choosing parallel edge `pick` at every
// hop.
type pickA struct{ pick int }

func (d pickA) ParallelSubset(p *sptree.Node) []int {
	// The top-level P: choose the S child whose first leaf leaves "s"
	// toward "m1" (branch A).
	for i, c := range p.Children {
		leaves := c.Leaves()
		if len(leaves) > 0 && leaves[0].Dst == "m1" && c.Type == sptree.S {
			return []int{i}
		}
	}
	// A multi-edge hop inside branch A: both children are Q leaves.
	if len(p.Children) == 2 && p.Children[0].Type == sptree.Q {
		return []int{d.pick}
	}
	return []int{0}
}
func (pickA) ForkCopies(*sptree.Node) int     { return 1 }
func (pickA) LoopIterations(*sptree.Node) int { return 1 }

func TestUnstableWithStructuredSkeleton(t *testing.T) {
	sp := deepSkeletonSpec(t)
	r1, err := wfrun.Execute(sp, pickA{pick: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wfrun.Execute(sp, pickA{pick: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	// Hop-by-hop editing costs 2 per hop * 4 hops = 8; the scratch
	// workaround costs 1 (insert B skeleton) + 1 (delete A) + 1
	// (insert new A) + 1 (delete skeleton) = 4.
	if res.Distance != 4 {
		t.Fatalf("distance = %g, want 4", res.Distance)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if script.TotalCost() != 4 {
		t.Fatalf("script cost %g != 4\n%s", script.TotalCost(), script)
	}
	var skeletons []edit.Op
	for _, op := range script.Ops {
		if op.Temporary {
			skeletons = append(skeletons, op)
		}
	}
	if len(skeletons) != 2 {
		t.Fatalf("want a scratch insert/delete pair, got %d temporaries:\n%s", len(skeletons), script)
	}
	// The skeleton is branch B's two-edge path s -> x -> t.
	for _, op := range skeletons {
		if op.Length != 2 || op.SrcLabel != "s" || op.DstLabel != "t" {
			t.Fatalf("skeleton op should be a 2-edge s..t path, got %+v", op)
		}
		if len(op.PathLabels) != 3 || op.PathLabels[1] != "x" {
			t.Fatalf("skeleton path should pass through x, got %v", op.PathLabels)
		}
	}
	if !sptree.EquivalentRuns(final, r2.Tree) {
		t.Fatal("script did not produce T2")
	}
}

// TestSkeletonLongerAllocation drives the skeleton builder through a
// series allocation where the first child cannot absorb the whole
// length budget: branch B is a 3-edge chain with a short parallel
// shortcut, making two lengths achievable.
func TestSkeletonLongerAllocation(t *testing.T) {
	g := graph.New()
	for _, n := range []string{"s", "m1", "m2", "m3", "x", "y", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	chain := []string{"s", "m1", "m2", "m3", "t"}
	for i := 0; i+1 < len(chain); i++ {
		g.MustAddEdge(graph.NodeID(chain[i]), graph.NodeID(chain[i+1]))
		g.MustAddEdge(graph.NodeID(chain[i]), graph.NodeID(chain[i+1]))
	}
	// Branch B: s -> x -> y -> t with a shortcut x -> t, so B
	// achieves lengths {2, 3}.
	g.MustAddEdge("s", "x")
	g.MustAddEdge("x", "y")
	g.MustAddEdge("y", "t")
	g.MustAddEdge("x", "t")
	sp, err := spec.New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := wfrun.Execute(sp, pickA{pick: 0})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := wfrun.Execute(sp, pickA{pick: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 4 {
		t.Fatalf("distance = %g, want 4", res.Distance)
	}
	script, final, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if script.TotalCost() != res.Distance {
		t.Fatalf("script cost %g != %g\n%s", script.TotalCost(), res.Distance, script)
	}
	if !sptree.EquivalentRuns(final, r2.Tree) {
		t.Fatal("script did not produce T2")
	}
	// Under the length cost model the skeleton should pick the
	// shortest achievable B execution (length 2 via the shortcut).
	resLen, err := Diff(r1, r2, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	scriptLen, _, err := resLen.Script()
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range scriptLen.Ops {
		if op.Temporary && op.Length != 2 {
			t.Fatalf("length-cost skeleton should use the length-2 shortcut, got length %d", op.Length)
		}
	}
}
