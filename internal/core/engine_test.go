package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

// engineCorpus builds a mixed corpus of run cohorts: the Fig. 2 worked
// examples, the looped variant, and random runs of two catalog
// workflows, exercising S/P/F/L cases, unstable matches and loops.
func engineCorpus(t testing.TB) [][]*wfrun.Run {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var corpus [][]*wfrun.Run

	sp := fixtures.Fig2Spec()
	corpus = append(corpus, []*wfrun.Run{fixtures.Fig2R1(sp), fixtures.Fig2R2(sp)})

	spl := fixtures.Fig2SpecWithLoop()
	var looped []*wfrun.Run
	for i := 0; i < 4; i++ {
		r, err := gen.RandomRun(spl, gen.RunParams{ProbP: 0.6, ProbF: 0.5, MaxF: 3, ProbL: 0.5, MaxL: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		looped = append(looped, r)
	}
	corpus = append(corpus, looped)

	for _, name := range []string{"PA", "EMBOSS"} {
		csp, err := gen.Catalog(name)
		if err != nil {
			t.Fatal(err)
		}
		var runs []*wfrun.Run
		for i := 0; i < 4; i++ {
			r, err := gen.RandomRun(csp, gen.DefaultRunParams(), rng)
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, r)
		}
		corpus = append(corpus, runs)
	}
	return corpus
}

// TestEngineMatchesFreshDiff asserts that one Engine reused across an
// entire corpus (spanning several specifications) produces exactly the
// same distances, mappings and edit scripts as fresh Diff calls.
func TestEngineMatchesFreshDiff(t *testing.T) {
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			eng := NewEngine(m)
			for ci, cohort := range engineCorpus(t) {
				for i := range cohort {
					for j := range cohort {
						fresh, err := Diff(cohort[i], cohort[j], m)
						if err != nil {
							t.Fatal(err)
						}
						batch, err := eng.Diff(cohort[i], cohort[j])
						if err != nil {
							t.Fatal(err)
						}
						if batch.Distance != fresh.Distance {
							t.Fatalf("cohort %d pair (%d,%d): engine distance %g != fresh %g",
								ci, i, j, batch.Distance, fresh.Distance)
						}
						fm, bm := fresh.Mapping(), batch.Mapping()
						if len(fm) != len(bm) {
							t.Fatalf("cohort %d pair (%d,%d): mapping sizes %d != %d", ci, i, j, len(bm), len(fm))
						}
						for k := range fm {
							if fm[k] != bm[k] {
								t.Fatalf("cohort %d pair (%d,%d): mapping entry %d differs", ci, i, j, k)
							}
						}
						fs, _, err := fresh.Script()
						if err != nil {
							t.Fatal(err)
						}
						bs, _, err := batch.Script()
						if err != nil {
							t.Fatal(err)
						}
						if fmt.Sprint(fs.Ops) != fmt.Sprint(bs.Ops) {
							t.Fatalf("cohort %d pair (%d,%d): scripts differ:\n%v\nvs\n%v", ci, i, j, bs.Ops, fs.Ops)
						}
					}
				}
			}
		})
	}
}

// TestEngineResultStaleness: a Result's Mapping/Script must refuse to
// read the engine's tables after a subsequent Diff overwrote them.
func TestEngineResultStaleness(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1, r2 := fixtures.Fig2R1(sp), fixtures.Fig2R2(sp)
	eng := NewEngine(cost.Unit{})
	res, err := eng.Diff(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Diff(r2, r1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := res.Script(); err == nil {
		t.Fatal("Script on a stale engine Result must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mapping on a stale engine Result must panic")
		}
	}()
	res.Mapping()
}

// TestEngineDistanceSelf: reused engine on identical runs is zero.
func TestEngineDistanceSelf(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	eng := NewEngine(cost.Unit{})
	for i := 0; i < 3; i++ {
		d, err := eng.Distance(r1, r1)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("self distance = %g, want 0", d)
		}
	}
}
