// Package core implements the differencing algorithm of Bao et al.:
// the subtree-deletion dynamic program (Algorithm 3), the edit
// distance / minimum-cost well-formed mapping computation on annotated
// SP-trees (Algorithm 4, extended to loops by Algorithm 6), and the
// assembly of a validity-preserving minimum-cost edit script from the
// mapping (the constructive proof of Lemma 5.1).
package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/sptree"
)

var inf = math.Inf(1)

// deleter computes, per Algorithm 3, for every node v of an annotated
// run tree:
//
//	X(v)    — the minimum cost of deleting T[v];
//	Y(v)[l] — the minimum cost of a sequence of elementary subtree
//	          deletions reducing T[v] to a branch-free subtree with
//	          exactly l leaves;
//	l(v)    — the maximum achievable l.
//
// P, F and L nodes keep exactly one child and delete the others
// (loops are handled exactly like forks, Section VI); S nodes split
// the leaf budget over their children by the Z dynamic program.
// Argmins are recorded so deletion plans can be reconstructed.
type deleter struct {
	model cost.Model

	x     map[*sptree.Node]float64
	y     map[*sptree.Node][]float64 // y[v][l], l in [0, l(v)]; unreachable = +Inf
	keep  map[*sptree.Node][]int     // P/F/L: child kept to reach l leaves
	zarg  map[*sptree.Node][][]int   // S: leaves given to the first i-1 children
	bestL map[*sptree.Node]int       // argmin_l Y(v)[l] + γ(l, s(v), t(v))
}

func newDeleter(m cost.Model) *deleter {
	return &deleter{
		model: m,
		x:     make(map[*sptree.Node]float64),
		y:     make(map[*sptree.Node][]float64),
		keep:  make(map[*sptree.Node][]int),
		zarg:  make(map[*sptree.Node][][]int),
		bestL: make(map[*sptree.Node]int),
	}
}

// X returns the minimum cost of deleting T[v].
func (d *deleter) X(v *sptree.Node) float64 {
	d.ensure(v)
	return d.x[v]
}

// ensure computes the tables for v (and its descendants) once.
func (d *deleter) ensure(v *sptree.Node) {
	if _, ok := d.x[v]; ok {
		return
	}
	for _, c := range v.Children {
		d.ensure(c)
	}
	switch v.Type {
	case sptree.Q:
		d.y[v] = []float64{inf, 0}

	case sptree.P, sptree.F, sptree.L:
		maxL := 0
		sumX := 0.0
		for _, c := range v.Children {
			if lc := len(d.y[c]) - 1; lc > maxL {
				maxL = lc
			}
			sumX += d.x[c]
		}
		y := make([]float64, maxL+1)
		keep := make([]int, maxL+1)
		y[0] = inf
		for l := 1; l <= maxL; l++ {
			y[l] = inf
			keep[l] = -1
			for i, c := range v.Children {
				yc := d.y[c]
				if l >= len(yc) || math.IsInf(yc[l], 1) {
					continue
				}
				cand := yc[l] + sumX - d.x[c]
				if cand < y[l] {
					y[l] = cand
					keep[l] = i
				}
			}
		}
		d.y[v] = y
		d.keep[v] = keep

	case sptree.S:
		maxL := 0
		for _, c := range v.Children {
			maxL += len(d.y[c]) - 1
		}
		z := make([]float64, maxL+1)
		zprev := make([]float64, maxL+1)
		arg := make([][]int, len(v.Children)+1)
		for i := range zprev {
			zprev[i] = inf
		}
		zprev[0] = 0
		for i, c := range v.Children {
			arg[i+1] = make([]int, maxL+1)
			yc := d.y[c]
			for l := 0; l <= maxL; l++ {
				z[l] = inf
				arg[i+1][l] = -1
				for k := 0; k <= l; k++ {
					if math.IsInf(zprev[k], 1) {
						continue
					}
					lc := l - k
					if lc >= len(yc) || math.IsInf(yc[lc], 1) {
						continue
					}
					if cand := zprev[k] + yc[lc]; cand < z[l] {
						z[l] = cand
						arg[i+1][l] = k
					}
				}
			}
			z, zprev = zprev, z
		}
		y := append([]float64(nil), zprev...)
		y[0] = inf // an S node always retains at least one leaf per child
		d.y[v] = y
		d.zarg[v] = arg
	}

	// X(v) = min over l of Y(v)[l] + γ(l, s(v), t(v)): reduce to an
	// elementary subtree with l leaves, then delete it in one step.
	y := d.y[v]
	best := inf
	bestL := -1
	for l := 1; l < len(y); l++ {
		if math.IsInf(y[l], 1) {
			continue
		}
		if cand := y[l] + d.model.PathCost(l, v.Src, v.Dst); cand < best {
			best = cand
			bestL = l
		}
	}
	d.x[v] = best
	d.bestL[v] = bestL
}

// planReduce appends to plan the ordered elementary deletions that
// reduce T[v] to a branch-free subtree with exactly l leaves; every
// listed node is deleted after the reductions that precede it.
func (d *deleter) planReduce(v *sptree.Node, l int, plan *[]*sptree.Node) {
	d.ensure(v)
	switch v.Type {
	case sptree.Q:
		// Already branch-free with one leaf.

	case sptree.P, sptree.F, sptree.L:
		i := d.keep[v][l]
		for j, c := range v.Children {
			if j != i {
				d.planDelete(c, plan)
			}
		}
		d.planReduce(v.Children[i], l, plan)

	case sptree.S:
		arg := d.zarg[v]
		alloc := make([]int, len(v.Children))
		rem := l
		for i := len(v.Children); i >= 1; i-- {
			k := arg[i][rem]
			alloc[i-1] = rem - k
			rem = k
		}
		for i, c := range v.Children {
			d.planReduce(c, alloc[i], plan)
		}
	}
}

// planDelete appends the ordered elementary deletions that delete T[v]
// entirely: reduce it to the optimal branch-free size, then delete the
// resulting elementary subtree rooted at v (which requires p(v) to be
// a true P, F or L node at execution time).
func (d *deleter) planDelete(v *sptree.Node, plan *[]*sptree.Node) {
	d.ensure(v)
	d.planReduce(v, d.bestL[v], plan)
	*plan = append(*plan, v)
}
