// Package core implements the differencing algorithm of Bao et al.:
// the subtree-deletion dynamic program (Algorithm 3), the edit
// distance / minimum-cost well-formed mapping computation on annotated
// SP-trees (Algorithm 4, extended to loops by Algorithm 6), and the
// assembly of a validity-preserving minimum-cost edit script from the
// mapping (the constructive proof of Lemma 5.1).
package core

import (
	"math"

	"repro/internal/cost"
	"repro/internal/sptree"
)

var inf = math.Inf(1)

// deleter computes, per Algorithm 3, for every node v of an annotated
// run tree:
//
//	X(v)    — the minimum cost of deleting T[v];
//	Y(v)[l] — the minimum cost of a sequence of elementary subtree
//	          deletions reducing T[v] to a branch-free subtree with
//	          exactly l leaves;
//	l(v)    — the maximum achievable l.
//
// P, F and L nodes keep exactly one child and delete the others
// (loops are handled exactly like forks, Section VI); S nodes split
// the leaf budget over their children by the Z dynamic program.
// Argmins are recorded so deletion plans can be reconstructed.
//
// All tables are flat slices indexed by node ID, so the tree must
// carry unique preorder IDs (the state Finalize and Index leave
// behind). reset marks every entry uncomputed while keeping the
// backing arrays, so a reused deleter performs no steady-state
// allocation; NaN in x is the "uncomputed" sentinel (legitimate
// values are finite or +Inf).
type deleter struct {
	model cost.Model

	x     []float64   // X(v); NaN = uncomputed
	y     [][]float64 // y[v][l], l in [0, l(v)]; unreachable = +Inf
	keep  [][]int     // P/F/L: child kept to reach l leaves
	zarg  [][][]int   // S: leaves given to the first i-1 children
	bestL []int       // argmin_l Y(v)[l] + γ(l, s(v), t(v))

	z, zprev []float64 // shared rows of the S-node Z DP
}

func newDeleter(m cost.Model) *deleter {
	return &deleter{model: m}
}

// grow extends the tables to cover node IDs < n, marking new entries
// uncomputed.
func (d *deleter) grow(n int) {
	if n <= len(d.x) {
		return
	}
	for len(d.x) < n {
		d.x = append(d.x, math.NaN())
	}
	for len(d.y) < n {
		d.y = append(d.y, nil)
	}
	for len(d.keep) < n {
		d.keep = append(d.keep, nil)
	}
	for len(d.zarg) < n {
		d.zarg = append(d.zarg, nil)
	}
	for len(d.bestL) < n {
		d.bestL = append(d.bestL, 0)
	}
}

// reset marks every table entry uncomputed while keeping all backing
// arrays, readying the deleter for a tree with n nodes.
func (d *deleter) reset(n int) {
	d.grow(n)
	for i := range d.x {
		d.x[i] = math.NaN()
	}
}

// X returns the minimum cost of deleting T[v].
func (d *deleter) X(v *sptree.Node) float64 {
	d.ensure(v)
	return d.x[v.ID]
}

// growRow returns a slice of length n, reusing s's backing array when
// it is large enough; contents are unspecified.
func growRow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// ensure computes the tables for v (and its descendants) once.
func (d *deleter) ensure(v *sptree.Node) {
	d.grow(v.ID + 1)
	if !math.IsNaN(d.x[v.ID]) {
		return
	}
	for _, c := range v.Children {
		d.ensure(c)
	}
	switch v.Type {
	case sptree.Q:
		y := growRow(d.y[v.ID], 2)
		y[0], y[1] = inf, 0
		d.y[v.ID] = y

	case sptree.P, sptree.F, sptree.L:
		maxL := 0
		sumX := 0.0
		for _, c := range v.Children {
			if lc := len(d.y[c.ID]) - 1; lc > maxL {
				maxL = lc
			}
			sumX += d.x[c.ID]
		}
		y := growRow(d.y[v.ID], maxL+1)
		keep := growRow(d.keep[v.ID], maxL+1)
		y[0] = inf
		for l := 1; l <= maxL; l++ {
			y[l] = inf
			keep[l] = -1
			for i, c := range v.Children {
				yc := d.y[c.ID]
				if l >= len(yc) || math.IsInf(yc[l], 1) {
					continue
				}
				cand := yc[l] + sumX - d.x[c.ID]
				if cand < y[l] {
					y[l] = cand
					keep[l] = i
				}
			}
		}
		d.y[v.ID] = y
		d.keep[v.ID] = keep

	case sptree.S:
		maxL := 0
		for _, c := range v.Children {
			maxL += len(d.y[c.ID]) - 1
		}
		// z and zprev are deleter-shared rows: safe because all child
		// tables are already computed, so no recursion happens below.
		z := growRow(d.z, maxL+1)
		zprev := growRow(d.zprev, maxL+1)
		arg := d.zarg[v.ID]
		if cap(arg) < len(v.Children)+1 {
			arg = make([][]int, len(v.Children)+1)
		} else {
			arg = arg[:len(v.Children)+1]
		}
		for i := range zprev {
			zprev[i] = inf
		}
		zprev[0] = 0
		for i, c := range v.Children {
			arg[i+1] = growRow(arg[i+1], maxL+1)
			yc := d.y[c.ID]
			for l := 0; l <= maxL; l++ {
				z[l] = inf
				arg[i+1][l] = -1
				for k := 0; k <= l; k++ {
					if math.IsInf(zprev[k], 1) {
						continue
					}
					lc := l - k
					if lc >= len(yc) || math.IsInf(yc[lc], 1) {
						continue
					}
					if cand := zprev[k] + yc[lc]; cand < z[l] {
						z[l] = cand
						arg[i+1][l] = k
					}
				}
			}
			z, zprev = zprev, z
		}
		y := growRow(d.y[v.ID], maxL+1)
		copy(y, zprev[:maxL+1])
		y[0] = inf // an S node always retains at least one leaf per child
		d.y[v.ID] = y
		d.zarg[v.ID] = arg
		d.z, d.zprev = z, zprev

	}

	// X(v) = min over l of Y(v)[l] + γ(l, s(v), t(v)): reduce to an
	// elementary subtree with l leaves, then delete it in one step.
	y := d.y[v.ID]
	best := inf
	bestL := -1
	for l := 1; l < len(y); l++ {
		if math.IsInf(y[l], 1) {
			continue
		}
		if cand := y[l] + d.model.PathCost(l, v.Src, v.Dst); cand < best {
			best = cand
			bestL = l
		}
	}
	d.x[v.ID] = best
	d.bestL[v.ID] = bestL
}

// planReduce appends to plan the ordered elementary deletions that
// reduce T[v] to a branch-free subtree with exactly l leaves; every
// listed node is deleted after the reductions that precede it.
func (d *deleter) planReduce(v *sptree.Node, l int, plan *[]*sptree.Node) {
	d.ensure(v)
	switch v.Type {
	case sptree.Q:
		// Already branch-free with one leaf.

	case sptree.P, sptree.F, sptree.L:
		i := d.keep[v.ID][l]
		for j, c := range v.Children {
			if j != i {
				d.planDelete(c, plan)
			}
		}
		d.planReduce(v.Children[i], l, plan)

	case sptree.S:
		arg := d.zarg[v.ID]
		alloc := make([]int, len(v.Children))
		rem := l
		for i := len(v.Children); i >= 1; i-- {
			k := arg[i][rem]
			alloc[i-1] = rem - k
			rem = k
		}
		for i, c := range v.Children {
			d.planReduce(c, alloc[i], plan)
		}
	}
}

// planDelete appends the ordered elementary deletions that delete T[v]
// entirely: reduce it to the optimal branch-free size, then delete the
// resulting elementary subtree rooted at v (which requires p(v) to be
// a true P, F or L node at execution time).
func (d *deleter) planDelete(v *sptree.Node, plan *[]*sptree.Node) {
	d.ensure(v)
	d.planReduce(v, d.bestL[v.ID], plan)
	*plan = append(*plan, v)
}
