package core

import (
	"fmt"

	"repro/internal/edit"
	"repro/internal/graph"
	"repro/internal/sptree"
)

// Script materializes the minimum-cost edit script realizing the
// computed mapping, following the constructive proof of Lemma 5.1:
// unmatched children of mapped F/P/L pairs are inserted and deleted in
// a validity-preserving order, unstably matched P pairs use a
// temporary scratch branch, and non-elementary subtrees are edited via
// the reduction sequences reconstructed from Algorithm 3.
//
// It returns the script together with the final working tree, which is
// the clone of T1 transformed by the script (equivalent to T2 up to
// node-instance renaming). Every operation is validity-checked as it
// is applied; the script's total cost equals the edit distance.
func (r *Result) Script() (*edit.Script, *sptree.Node, error) {
	if r.gen != r.eng.gen {
		return nil, nil, fmt.Errorf("core: Result used after its Engine ran another Diff; extract the script before reusing the Engine")
	}
	b := &scriptBuilder{
		eng:    r.eng,
		script: &edit.Script{},
		m1:     make(map[*sptree.Node]*sptree.Node),
	}
	b.work = cloneWithMap(r.r1.Tree, b.m1)
	if err := b.emit(r.r1.Tree, r.r2.Tree); err != nil {
		return nil, nil, err
	}
	b.work.Finalize()
	return b.script, b.work, nil
}

type scriptBuilder struct {
	eng    *Engine
	script *edit.Script
	work   *sptree.Node
	m1     map[*sptree.Node]*sptree.Node // original T1 node -> working node
	tmpSeq int
}

// cloneWithMap deep-copies a tree, recording original->copy pairs.
func cloneWithMap(n *sptree.Node, m map[*sptree.Node]*sptree.Node) *sptree.Node {
	c := &sptree.Node{Type: n.Type, Edge: n.Edge, Spec: n.Spec, Src: n.Src, Dst: n.Dst, ID: n.ID}
	m[n] = c
	for _, child := range n.Children {
		c.Adopt(cloneWithMap(child, m))
	}
	return c
}

// opFor builds the Op record for editing the subtree currently rooted
// at w (costed in its present, reduced state).
func (b *scriptBuilder) opFor(kind edit.Kind, w *sptree.Node, temporary bool) edit.Op {
	length := w.CountLeaves()
	nodes, labels := edit.PathOf(w)
	loopOp := w.Parent != nil && w.Parent.Type == sptree.L
	return edit.Op{
		Kind:       kind,
		Cost:       b.eng.model.PathCost(length, w.Src, w.Dst),
		Length:     length,
		SrcLabel:   w.Src,
		DstLabel:   w.Dst,
		PathNodes:  nodes,
		PathLabels: labels,
		LoopOp:     loopOp,
		Temporary:  temporary,
	}
}

// deleteWhole removes the entire subtree of original T1 node orig from
// the working tree via its optimal elementary deletion sequence.
func (b *scriptBuilder) deleteWhole(orig *sptree.Node) error {
	var plan []*sptree.Node
	b.eng.del1.planDelete(orig, &plan)
	for _, n := range plan {
		w, ok := b.m1[n]
		if !ok {
			return fmt.Errorf("core: deletion plan references a node outside the working tree")
		}
		op := b.opFor(edit.Delete, w, false)
		if err := edit.DeleteElementary(w); err != nil {
			return fmt.Errorf("core: invalid deletion in generated script: %w", err)
		}
		b.script.Ops = append(b.script.Ops, op)
	}
	return nil
}

// step records one dismantling move of a target fragment so it can be
// replayed in reverse as an insertion sequence.
type step struct {
	node   *sptree.Node
	parent *sptree.Node // nil for the fragment root
	pos    int
}

// insertWhole inserts a copy of the T2 subtree rooted at orig2 as a
// child of the working node parent at position pos (-1 appends), as
// the reverse of the subtree's optimal deletion sequence.
func (b *scriptBuilder) insertWhole(parent *sptree.Node, pos int, orig2 *sptree.Node) error {
	m2 := make(map[*sptree.Node]*sptree.Node)
	frag := cloneWithMap(orig2, m2)
	var plan []*sptree.Node
	b.eng.del2.planDelete(orig2, &plan)
	steps := make([]step, 0, len(plan))
	for _, n := range plan {
		w := m2[n]
		if w.Parent == nil {
			if w != frag {
				return fmt.Errorf("core: insertion plan detached an unexpected fragment root")
			}
			steps = append(steps, step{node: w})
			continue
		}
		p := w.Parent
		i := p.ChildIndex(w)
		p.RemoveChild(i)
		steps = append(steps, step{node: w, parent: p, pos: i})
	}
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		attachParent, attachPos := st.parent, st.pos
		if attachParent == nil {
			attachParent, attachPos = parent, pos
			if attachPos < 0 {
				attachPos = len(attachParent.Children)
			}
		}
		if err := edit.InsertElementary(attachParent, attachPos, st.node); err != nil {
			return fmt.Errorf("core: invalid insertion in generated script: %w", err)
		}
		b.script.Ops = append(b.script.Ops, b.opFor(edit.Insert, st.node, false))
	}
	return nil
}

// emit walks a mapped pair and appends the edit operations
// transforming the working subtree of v1 into the shape of T2[v2].
func (b *scriptBuilder) emit(v1, v2 *sptree.Node) error {
	dec := b.eng.lookup(v1, v2)
	if dec == nil {
		return fmt.Errorf("core: no decision recorded for node pair")
	}
	switch v1.Type {
	case sptree.Q:
		return nil

	case sptree.S:
		for _, p := range b.eng.pairsOf(dec) {
			if err := b.emit(p[0], p[1]); err != nil {
				return err
			}
		}
		return nil

	case sptree.P:
		if dec.unstable {
			return b.emitUnstable(v1, v2)
		}
		return b.emitUnordered(v1, v2, dec)

	case sptree.F:
		return b.emitUnordered(v1, v2, dec)

	case sptree.L:
		return b.emitOrdered(v1, v2, dec)
	}
	return fmt.Errorf("core: unknown node type %s", v1.Type)
}

// emitUnordered transforms the children of a mapped P or F pair:
// unmatched new children are inserted as soon as they are insertable,
// unmatched old children are deleted whenever the parent stays true;
// matched pairs recurse afterwards.
func (b *scriptBuilder) emitUnordered(v1, v2 *sptree.Node, dec *decision) error {
	w1 := b.m1[v1]
	pairs := b.eng.pairsOf(dec)
	matched1 := make(map[*sptree.Node]bool, len(pairs))
	matched2 := make(map[*sptree.Node]bool, len(pairs))
	for _, p := range pairs {
		matched1[p[0]] = true
		matched2[p[1]] = true
	}
	var oldDel, newIns []*sptree.Node
	for _, c := range v1.Children {
		if !matched1[c] {
			oldDel = append(oldDel, c)
		}
	}
	for _, c := range v2.Children {
		if !matched2[c] {
			newIns = append(newIns, c)
		}
	}
	insertable := func(c2 *sptree.Node) bool {
		if v1.Type != sptree.P {
			return true
		}
		for _, c := range w1.Children {
			if c.Spec == c2.Spec {
				return false
			}
		}
		return true
	}
	for len(oldDel)+len(newIns) > 0 {
		progressed := false
		for i, c2 := range newIns {
			if insertable(c2) {
				if err := b.insertWhole(w1, -1, c2); err != nil {
					return err
				}
				newIns = append(newIns[:i], newIns[i+1:]...)
				progressed = true
				break
			}
		}
		if progressed {
			continue
		}
		if len(oldDel) > 0 && w1.True() {
			if err := b.deleteWhole(oldDel[0]); err != nil {
				return err
			}
			oldDel = oldDel[1:]
			progressed = true
		}
		if !progressed {
			return fmt.Errorf("core: stuck transforming %s node children (should be an unstable match)", v1.Type)
		}
	}
	for _, p := range pairs {
		if err := b.emit(p[0], p[1]); err != nil {
			return err
		}
	}
	return nil
}

// emitOrdered transforms the ordered iterations of a mapped L pair:
// new iterations are inserted at the positions dictated by the
// non-crossing matching, old unmatched iterations are contracted, then
// matched iterations recurse.
func (b *scriptBuilder) emitOrdered(v1, v2 *sptree.Node, dec *decision) error {
	w1 := b.m1[v1]
	pairs := b.eng.pairsOf(dec)
	// anchor[j] = the working node matched to T2 child index j.
	anchor := make(map[int]*sptree.Node, len(pairs))
	matched1 := make(map[*sptree.Node]bool, len(pairs))
	matched2 := make(map[*sptree.Node]bool, len(pairs))
	idx2 := make(map[*sptree.Node]int, len(v2.Children))
	for j, c := range v2.Children {
		idx2[c] = j
	}
	for _, p := range pairs {
		matched1[p[0]] = true
		matched2[p[1]] = true
		anchor[idx2[p[1]]] = b.m1[p[0]]
	}
	for j, c2 := range v2.Children {
		if matched2[c2] {
			continue
		}
		// Insert before the working child matched to the next
		// matched T2 index; append if there is none.
		pos := -1
		for j2 := j + 1; j2 < len(v2.Children); j2++ {
			if a, ok := anchor[j2]; ok {
				pos = w1.ChildIndex(a)
				break
			}
		}
		if err := b.insertWhole(w1, pos, c2); err != nil {
			return err
		}
	}
	for _, c1 := range v1.Children {
		if matched1[c1] {
			continue
		}
		if err := b.deleteWhole(c1); err != nil {
			return err
		}
	}
	for _, p := range pairs {
		if err := b.emit(p[0], p[1]); err != nil {
			return err
		}
	}
	return nil
}

// emitUnstable realizes the four-operation workaround for an unstably
// matched P pair (Definition 5.2 / Eq. 2): insert a minimum-cost
// scratch subtree on a different specification branch, delete the old
// child, insert the new child, delete the scratch subtree.
func (b *scriptBuilder) emitUnstable(v1, v2 *sptree.Node) error {
	w1 := b.m1[v1]
	c1, c2 := v1.Children[0], v2.Children[0]
	spc, length := b.eng.minSkeleton(v1.Spec, c1.Spec)
	if spc == nil {
		return fmt.Errorf("core: no alternative specification branch for unstable match")
	}
	skel, err := b.skeleton(spc, length, b.tmpID(spc.Src), b.tmpID(spc.Dst))
	if err != nil {
		return err
	}
	if err := edit.InsertElementary(w1, len(w1.Children), skel); err != nil {
		return fmt.Errorf("core: invalid scratch insertion: %w", err)
	}
	b.script.Ops = append(b.script.Ops, b.opFor(edit.Insert, skel, true))
	if err := b.deleteWhole(c1); err != nil {
		return err
	}
	if err := b.insertWhole(w1, -1, c2); err != nil {
		return err
	}
	op := b.opFor(edit.Delete, skel, true)
	if err := edit.DeleteElementary(skel); err != nil {
		return fmt.Errorf("core: invalid scratch deletion: %w", err)
	}
	b.script.Ops = append(b.script.Ops, op)
	return nil
}

func (b *scriptBuilder) tmpID(label string) string {
	b.tmpSeq++
	return fmt.Sprintf("%s~%d", label, b.tmpSeq)
}

// skeleton builds a branch-free run subtree deriving from
// specification node spn with exactly l leaves, using synthetic node
// instances src..dst. Lengths are allocated against the achievable
// branch-free length sets of the specification.
func (b *scriptBuilder) skeleton(spn *sptree.Node, l int, src, dst string) (*sptree.Node, error) {
	switch spn.Type {
	case sptree.Q:
		if l != 1 {
			return nil, fmt.Errorf("core: skeleton for an edge must have length 1, got %d", l)
		}
		n := sptree.NewQ(graph.Edge{From: graph.NodeID(src), To: graph.NodeID(dst)}, spn.Src, spn.Dst)
		n.Spec = spn
		return n, nil

	case sptree.P:
		for _, c := range spn.Children {
			if containsLen(b.eng.sp.AchievableLengths(c), l) {
				child, err := b.skeleton(c, l, src, dst)
				if err != nil {
					return nil, err
				}
				n := &sptree.Node{Type: sptree.P, Spec: spn, Src: spn.Src, Dst: spn.Dst}
				n.Adopt(child)
				return n, nil
			}
		}
		return nil, fmt.Errorf("core: no parallel branch achieves skeleton length %d", l)

	case sptree.F, sptree.L:
		child, err := b.skeleton(spn.Children[0], l, src, dst)
		if err != nil {
			return nil, err
		}
		n := &sptree.Node{Type: spn.Type, Spec: spn, Src: spn.Src, Dst: spn.Dst}
		n.Adopt(child)
		return n, nil

	case sptree.S:
		// suffix[i] = set of total lengths achievable by children i..
		k := len(spn.Children)
		maxL := b.eng.sp.G.NumEdges()
		suffix := make([][]bool, k+1)
		suffix[k] = make([]bool, maxL+1)
		suffix[k][0] = true
		for i := k - 1; i >= 0; i-- {
			suffix[i] = make([]bool, maxL+1)
			for _, li := range b.eng.sp.AchievableLengths(spn.Children[i]) {
				for rest := 0; li+rest <= maxL; rest++ {
					if suffix[i+1][rest] {
						suffix[i][li+rest] = true
					}
				}
			}
		}
		if l > maxL || !suffix[0][l] {
			return nil, fmt.Errorf("core: series skeleton length %d unachievable", l)
		}
		n := &sptree.Node{Type: sptree.S, Spec: spn, Src: spn.Src, Dst: spn.Dst}
		curSrc := src
		remaining := l
		for i, c := range spn.Children {
			chosen := -1
			for _, li := range b.eng.sp.AchievableLengths(c) {
				if li <= remaining && suffix[i+1][remaining-li] {
					chosen = li
					break
				}
			}
			if chosen < 0 {
				return nil, fmt.Errorf("core: series skeleton allocation failed")
			}
			curDst := dst
			if i < k-1 {
				curDst = b.tmpID(c.Dst)
			}
			child, err := b.skeleton(c, chosen, curSrc, curDst)
			if err != nil {
				return nil, err
			}
			n.Adopt(child)
			curSrc = curDst
			remaining -= chosen
		}
		return n, nil
	}
	return nil, fmt.Errorf("core: unknown specification node type %s", spn.Type)
}

func containsLen(ls []int, l int) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

// EvaluateScript prices an edit script under a (possibly different)
// cost model, as needed for the cost-model sensitivity experiment
// (Fig. 16): each operation is re-priced as γ'(length, src, dst).
func EvaluateScript(s *edit.Script, m interface {
	PathCost(length int, srcLabel, dstLabel string) float64
}) float64 {
	total := 0.0
	for _, op := range s.Ops {
		total += m.PathCost(op.Length, op.SrcLabel, op.DstLabel)
	}
	return total
}
