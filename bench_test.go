package provdiff

// One benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// The full sweeps (all sizes, paper-scale samples) live in
// cmd/experiments; these benches pin one representative point per
// figure so `go test -bench=.` tracks the performance of every
// experiment code path.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/match"
	"repro/internal/spec"
	"repro/internal/spgraph"
	"repro/internal/wfrun"
)

// BenchmarkTable1 regenerates Table I (catalog construction and
// annotated-tree building for all six real workflows).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// fig11Pair pregenerates a pair of runs of the named workflow with
// the given total edge count.
func fig11Pair(b *testing.B, name string, total int) (*wfrun.Run, *wfrun.Run) {
	b.Helper()
	sp, err := gen.Catalog(name)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	r1, err := gen.RunWithTargetEdges(sp, total/2, 0.1, gen.DefaultRunParams(), rng)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := gen.RunWithTargetEdges(sp, total/2, 0.1, gen.DefaultRunParams(), rng)
	if err != nil {
		b.Fatal(err)
	}
	return r1, r2
}

// BenchmarkFig11 differences runs of each real workflow at a
// representative size (Fig. 11, unit cost).
func BenchmarkFig11(b *testing.B) {
	for _, name := range gen.CatalogNames {
		for _, total := range []int{200, 600} {
			b.Run(fmt.Sprintf("%s/edges=%d", name, total), func(b *testing.B) {
				r1, r2 := fig11Pair(b, name, total)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Distance(r1, r2, cost.Unit{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// fig12Pair builds a fork/loop-free random spec of the given ratio
// and a pair of probP=0.95 runs (Figs. 12/13 workload).
func fig12Pair(b *testing.B, ratio float64, edges int) (*wfrun.Run, *wfrun.Run) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: edges, SeriesRatio: ratio}, rng)
	if err != nil {
		b.Fatal(err)
	}
	params := gen.RunParams{ProbP: 0.95, MaxF: 1, MaxL: 1}
	r1, err := gen.RandomRun(sp, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := gen.RandomRun(sp, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	return r1, r2
}

// BenchmarkFig12SeriesVsParallel pins one point per ratio curve of
// Fig. 12 (the paper's finding: series-heavy is slowest because the
// S-node deletion DP dominates).
func BenchmarkFig12SeriesVsParallel(b *testing.B) {
	for _, tc := range []struct {
		name  string
		ratio float64
	}{
		{"r=3", 3},
		{"r=1", 1},
		{"r=1over3", 1.0 / 3},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r1, r2 := fig12Pair(b, tc.ratio, 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Distance(r1, r2, cost.Unit{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// fig14Pair builds the Fig. 14/15 workload: 100-edge spec, ratio 0.5,
// 5 forks + 5 loops, probP=1, maxF=maxL=20.
func fig14Pair(b *testing.B, aFork, bFork bool, prob float64) (*wfrun.Run, *wfrun.Run) {
	b.Helper()
	rng := rand.New(rand.NewSource(21))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 100, SeriesRatio: 0.5, Forks: 5, Loops: 5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(fork bool) *wfrun.Run {
		p := gen.RunParams{ProbP: 1, MaxF: 20, MaxL: 20}
		if fork {
			p.ProbF = prob
		} else {
			p.ProbL = prob
		}
		r, err := gen.RandomRun(sp, p, rng)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	return mk(aFork), mk(bFork)
}

// BenchmarkFig14ForkVsLoop pins the three curves of Fig. 14 at
// probability 0.5 (fork-fork needs Hungarian matching, loop-loop the
// cheaper non-crossing DP).
func BenchmarkFig14ForkVsLoop(b *testing.B) {
	for _, tc := range []struct {
		name         string
		aFork, bFork bool
	}{
		{"fork_vs_fork", true, true},
		{"fork_vs_loop", true, false},
		{"loop_vs_loop", false, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			r1, r2 := fig14Pair(b, tc.aFork, tc.bFork, 0.5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Distance(r1, r2, cost.Unit{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16CostModels pins the Fig. 16 loop body: an ε-optimal
// diff plus script extraction and re-pricing under both extremes.
func BenchmarkFig16CostModels(b *testing.B) {
	sp, err := gen.Fig17bSpec(nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	params := gen.RunParams{ProbP: 0.5, ProbF: 1, MaxF: 5, MaxL: 1}
	r1, err := gen.RandomRun(sp, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := gen.RandomRun(sp, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Diff(r1, r2, cost.Power{Epsilon: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		script, _, err := res.Script()
		if err != nil {
			b.Fatal(err)
		}
		_ = core.EvaluateScript(script, cost.Unit{})
		_ = core.EvaluateScript(script, cost.Length{})
	}
}

// BenchmarkScriptExtraction isolates mapping-to-script assembly
// (Lemma 5.1 bookkeeping) from distance computation.
func BenchmarkScriptExtraction(b *testing.B) {
	r1, r2 := fig11Pair(b, "PA", 400)
	res, err := core.Diff(r1, r2, cost.Unit{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := res.Script(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose measures SP recognition / canonical tree
// decomposition (Valdes-Tarjan-Lawler reduction) on a large run.
func BenchmarkDecompose(b *testing.B) {
	r1, _ := fig11Pair(b, "PGAQ", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spgraph.Decompose(r1.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerive measures f″ (Algorithms 2 and 5): annotated-tree
// derivation from a bare run graph.
func BenchmarkDerive(b *testing.B) {
	sp, err := gen.Catalog("PA")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r, err := gen.RunWithTargetEdges(sp, 500, 0.1, gen.DefaultRunParams(), rng)
	if err != nil {
		b.Fatal(err)
	}
	refs := r.EdgeRefs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wfrun.Derive(sp, r.Graph, refs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchingAblation compares the two matching primitives at
// F/L nodes directly: O(n³) Hungarian vs O(n²) non-crossing DP — the
// reason fork-heavy differencing dominates Fig. 14.
func BenchmarkMatchingAblation(b *testing.B) {
	const n = 60
	rng := rand.New(rand.NewSource(3))
	costs := make([][]float64, n)
	for i := range costs {
		costs[i] = make([]float64, n)
		for j := range costs[i] {
			costs[i][j] = float64(rng.Intn(100))
		}
	}
	pair := func(i, j int) float64 { return costs[i][j] }
	del := func(i int) float64 { return 50 }
	ins := func(j int) float64 { return 50 }
	b.Run("hungarian", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.Bipartite(n, n, pair, del, ins)
		}
	})
	b.Run("noncrossing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.NonCrossing(n, n, pair, del, ins)
		}
	})
	// Flat-row Scratch forms: what the diff Engine threads through
	// every F/L node — same algorithms, zero steady-state allocation.
	flat := make([]float64, n*n)
	for i := range costs {
		copy(flat[i*n:], costs[i])
	}
	dels := make([]float64, n)
	inss := make([]float64, n)
	for i := range dels {
		dels[i], inss[i] = 50, 50
	}
	b.Run("hungarian_scratch", func(b *testing.B) {
		b.ReportAllocs()
		var s match.Scratch
		for i := 0; i < b.N; i++ {
			s.Bipartite(n, n, flat, dels, inss)
		}
	})
	b.Run("noncrossing_scratch", func(b *testing.B) {
		b.ReportAllocs()
		var s match.Scratch
		for i := 0; i < b.N; i++ {
			s.NonCrossing(n, n, flat, dels, inss)
		}
	})
}

// BenchmarkSpecConstruction measures Algorithm 1 end to end on random
// specifications with annotations.
func BenchmarkSpecConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	cfgs := make([]gen.SpecConfig, 0, 8)
	for i := 0; i < 8; i++ {
		cfgs = append(cfgs, gen.SpecConfig{Edges: 200, SeriesRatio: 1, Forks: 5, Loops: 3})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.RandomSpec(cfgs[i%len(cfgs)], rng); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = spec.Stats{} // keep the spec import tied to the bench build

// BenchmarkDistanceMatrix measures the concurrent cohort matrix (the
// paper's motivating many-runs comparison) over ten PA runs.
func BenchmarkDistanceMatrix(b *testing.B) {
	sp, err := gen.Catalog("PA")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	runs := make([]*wfrun.Run, 10)
	for i := range runs {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			b.Fatal(err)
		}
		runs[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.DistanceMatrix(runs, nil, cost.Unit{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuse contrasts a fresh differ per call with one
// reused Engine over the same pair: the engine amortizes every memo
// table, matcher scratch and deletion DP buffer across the batch.
func BenchmarkEngineReuse(b *testing.B) {
	r1, r2 := fig11Pair(b, "PA", 400)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Distance(r1, r2, cost.Unit{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		eng := core.NewEngine(cost.Unit{})
		for i := 0; i < b.N; i++ {
			if _, err := eng.Distance(r1, r2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
