// Package provdiff is a Go implementation of "Differencing Provenance
// in Scientific Workflows" (Bao, Cohen-Boulakia, Davidson, Eyal,
// Khanna; ICDE 2009 / UPenn TR MS-CIS-08-04).
//
// Scientific workflow runs repeat modules through forks and loops, so
// two runs of the same specification cannot be compared by naive
// node/edge set difference. This package models SP-workflow
// specifications — series-parallel graphs overlaid with well-nested
// forks and loops — and computes, in polynomial time, the edit
// distance between two valid runs: the minimum-cost sequence of
// elementary path insertions and deletions (plus loop expansions and
// contractions) transforming one run into the other while keeping
// every intermediate graph a valid run.
//
// The essential flow:
//
//	g := provdiff.NewGraph()
//	... add modules and links ...
//	sp, err := provdiff.NewSpec(g, forks, loops)
//	r1, err := provdiff.Execute(sp, decider)          // or DeriveRun / DecodeRun
//	r2, err := provdiff.Execute(sp, otherDecider)
//	res, err := provdiff.Diff(r1, r2, provdiff.Unit{})
//	script, _, err := res.Script()
//
// For batch workloads — distance matrices over run cohorts, repository
// cohort analysis, many-pair sweeps — construct one Engine per
// goroutine and reuse it: all memoization tables, matcher scratch and
// deletion DP buffers are flat slices reset between calls, so k diffs
// perform O(1) steady-state allocation:
//
//	eng := provdiff.NewEngine(provdiff.Unit{})
//	for _, pair := range pairs {
//		res, err := eng.Diff(pair.A, pair.B)   // res.Distance is always valid
//		...                                    // extract res.Mapping()/res.Script()
//	}                                          // before the next eng.Diff
//
// The cost model is pluggable: any metric γ(length, srcLabel,
// dstLabel) satisfying the paper's quadrangle inequality works; the
// built-in family is γ(l) = l^ε for ε ∈ [0, 1].
package provdiff

import (
	"io"
	"math/rand"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// Graph modeling.
type (
	// Graph is a node-labeled directed multigraph.
	Graph = graph.Graph
	// NodeID identifies a node of a Graph.
	NodeID = graph.NodeID
	// Edge is a directed (possibly parallel) edge.
	Edge = graph.Edge
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// Specifications.
type (
	// Spec is a validated SP-workflow specification (G, F, L).
	Spec = spec.Spec
	// EdgeSet identifies a fork or loop subgraph by its edges.
	EdgeSet = spec.EdgeSet
	// SpecStats are the Table I characteristics of a specification.
	SpecStats = spec.Stats
)

// NewSpec validates an SP specification graph with fork and loop
// subgraphs and builds its annotated SP-tree (Algorithm 1).
func NewSpec(g *Graph, forks, loops []EdgeSet) (*Spec, error) {
	return spec.New(g, forks, loops)
}

// Runs.
type (
	// Run is a valid run: annotated SP-tree plus materialized graph.
	Run = wfrun.Run
	// Decider supplies the choices of the execution function f′.
	Decider = wfrun.Decider
	// FullDecider takes every branch once with no replication.
	FullDecider = wfrun.FullDecider
)

// Execute produces a valid run of sp with choices drawn from d.
func Execute(sp *Spec, d Decider) (*Run, error) { return wfrun.Execute(sp, d) }

// DeriveRun computes the annotated SP-tree of a run given as a bare
// graph (Algorithms 2 and 5). edgeRefs may be nil unless the
// specification has parallel edges between the same labels.
func DeriveRun(sp *Spec, g *Graph, edgeRefs map[Edge]Edge) (*Run, error) {
	return wfrun.Derive(sp, g, edgeRefs)
}

// Cost models.
type (
	// CostModel prices elementary path edits.
	CostModel = cost.Model
	// Unit is γ(l) = 1.
	Unit = cost.Unit
	// Length is γ(l) = l.
	Length = cost.Length
	// Power is γ(l) = l^ε.
	Power = cost.Power
)

// CheckMetric verifies the metric conditions on a cost model.
func CheckMetric(m CostModel, maxLen int, labels []string) error {
	return cost.CheckMetric(m, maxLen, labels)
}

// Differencing.
type (
	// Result is a computed diff; it yields the distance, the
	// well-formed mapping and the minimum-cost edit script.
	Result = core.Result
	// Engine is a reusable differencing engine for batch workloads:
	// one engine per goroutine, scratch reused across Diff calls.
	Engine = core.Engine
	// Script is a sequence of applied edit operations.
	Script = edit.Script
	// Op is one elementary edit operation.
	Op = edit.Op
)

// NewEngine returns a reusable differencing engine under the given
// cost model. Results of Engine.Diff borrow the engine's tables:
// extract Mapping/Script before the same engine runs another Diff
// (Distance is always valid). Engines are not safe for concurrent
// use; create one per goroutine.
func NewEngine(m CostModel) *Engine { return core.NewEngine(m) }

// Diff computes the edit distance between two valid runs of the same
// specification (Algorithms 3, 4 and 6; O(|E|³)).
func Diff(r1, r2 *Run, m CostModel) (*Result, error) { return core.Diff(r1, r2, m) }

// Distance returns only δ(R1, R2).
func Distance(r1, r2 *Run, m CostModel) (float64, error) { return core.Distance(r1, r2, m) }

// EvaluateScript re-prices a script under another cost model.
func EvaluateScript(s *Script, m CostModel) float64 { return core.EvaluateScript(s, m) }

// Serving (the provserved HTTP layer over a Store — see extensions.go
// for the Store itself).
type (
	// AnalysisOptions tunes cohort fan-out and progress reporting.
	AnalysisOptions = analysis.Options
	// ServerOptions configures the HTTP service handler.
	ServerOptions = server.Options
)

// ValidateName reports whether a spec or run name is safe to store:
// every boundary accepting untrusted names (CLI, HTTP) rejects path
// separators, traversal components and NUL bytes through it.
func ValidateName(name string) error { return store.ValidateName(name) }

// NewServerHandler returns the provserved HTTP handler over an open
// repository: REST browsing/import, cached differencing with pooled
// engines, cohort matrices with streamed progress, SVG diff renderings
// and service stats. Mount it on any http.Server.
func NewServerHandler(st *Store, opts ServerOptions) http.Handler {
	return server.New(st, opts)
}

// Generation.
type (
	// SpecConfig controls RandomSpec.
	SpecConfig = gen.SpecConfig
	// RunParams are the probP/probF/maxF/probL/maxL parameters.
	RunParams = gen.RunParams
)

// RandomSpec generates a random SP-workflow specification.
func RandomSpec(cfg SpecConfig, rng *rand.Rand) (*Spec, error) { return gen.RandomSpec(cfg, rng) }

// DefaultRunParams mirrors the paper's common run-generation setting.
func DefaultRunParams() RunParams { return gen.DefaultRunParams() }

// RandomRun executes a random valid run.
func RandomRun(sp *Spec, p RunParams, rng *rand.Rand) (*Run, error) {
	return gen.RandomRun(sp, p, rng)
}

// RunWithTargetEdges generates a run with approximately target edges.
func RunWithTargetEdges(sp *Spec, target int, tol float64, p RunParams, rng *rand.Rand) (*Run, error) {
	return gen.RunWithTargetEdges(sp, target, tol, p, rng)
}

// Catalog builds one of the six Table I workflow specifications
// ("PA", "EMBOSS", "SAXPF", "MB", "PGAQ", "BAIDD").
func Catalog(name string) (*Spec, error) { return gen.Catalog(name) }

// CatalogNames lists the Table I workflows.
func CatalogNames() []string { return append([]string(nil), gen.CatalogNames...) }

// ProteinAnnotation builds the full Fig. 1 protein annotation
// workflow.
func ProteinAnnotation() (*Spec, error) { return gen.ProteinAnnotation() }

// XML round-tripping (the prototype's storage format).

// EncodeSpec writes a specification as XML.
func EncodeSpec(w io.Writer, sp *Spec, name string) error { return wfxml.EncodeSpec(w, sp, name) }

// DecodeSpec reads a specification from XML.
func DecodeSpec(r io.Reader) (*Spec, error) { return wfxml.DecodeSpec(r) }

// EncodeRun writes a run as XML with specification edge references.
func EncodeRun(w io.Writer, run *Run, name string) error { return wfxml.EncodeRun(w, run, name) }

// DecodeRun reads a run from XML and derives its annotated tree.
func DecodeRun(r io.Reader, sp *Spec) (*Run, error) { return wfxml.DecodeRun(r, sp) }

// Binary snapshot codec (the store's warm-start format): versioned,
// CRC-checksummed frames holding the *result* of an XML parse, so
// decoding skips validation and tree derivation entirely. XML remains
// the interchange format; these are for caches and snapshots.

// EncodeRunBinary serializes a run as a binary snapshot frame.
func EncodeRunBinary(run *Run) ([]byte, error) { return codec.EncodeRun(run) }

// DecodeRunBinary rebuilds a run from a snapshot frame against its
// specification, without re-deriving the tree. Corrupt or mismatched
// frames fail loudly; fall back to DecodeRun on the XML.
func DecodeRunBinary(data []byte, sp *Spec) (*Run, error) { return codec.DecodeRun(data, sp) }

// EncodeSpecBinary serializes a specification as a snapshot frame.
func EncodeSpecBinary(sp *Spec) []byte { return codec.EncodeSpec(sp) }

// DecodeSpecBinary rebuilds (and revalidates) a specification from a
// snapshot frame.
func DecodeSpecBinary(data []byte) (*Spec, error) { return codec.DecodeSpec(data) }
