// Command experiments regenerates every table and figure of the
// paper's evaluation (Section VIII):
//
//	experiments [-full] [-samples N] [-seed S] [-out DIR] table1 fig11 fig12 fig13 fig14 fig15 fig16
//	experiments all
//
// By default a reduced workload is used; -full runs at paper scale
// (100 samples per point, sizes up to 2000 edges), which takes
// considerably longer.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/expt"
)

func main() {
	var (
		full    = flag.Bool("full", false, "run at paper scale")
		samples = flag.Int("samples", 0, "override samples per data point")
		seed    = flag.Int64("seed", 0, "override random seed")
		outDir  = flag.String("out", "", "also write each table as TSV into this directory")
	)
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	o := expt.Defaults()
	if *full {
		o = expt.PaperScale()
	}
	if *samples > 0 {
		o.Samples = *samples
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	want := map[string]bool{}
	for _, t := range targets {
		if t == "all" {
			for _, k := range []string{"table1", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
				want[k] = true
			}
			continue
		}
		want[strings.ToLower(t)] = true
	}

	emit := func(t *expt.Table, file string) {
		fmt.Println(t.TSV())
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*outDir, file), []byte(t.TSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	if want["table1"] {
		t, err := expt.Table1()
		if err != nil {
			fatal(err)
		}
		emit(t, "table1.tsv")
	}
	if want["fig11"] {
		t, err := expt.Fig11(o)
		if err != nil {
			fatal(err)
		}
		emit(t, "fig11.tsv")
	}
	if want["fig12"] || want["fig13"] {
		timeT, distT, err := expt.Fig12and13(o)
		if err != nil {
			fatal(err)
		}
		if want["fig12"] {
			emit(timeT, "fig12.tsv")
		}
		if want["fig13"] {
			emit(distT, "fig13.tsv")
		}
	}
	if want["fig14"] || want["fig15"] {
		timeT, distT, err := expt.Fig14and15(o)
		if err != nil {
			fatal(err)
		}
		if want["fig14"] {
			emit(timeT, "fig14.tsv")
		}
		if want["fig15"] {
			emit(distT, "fig15.tsv")
		}
	}
	if want["fig16"] {
		t, err := expt.Fig16(o)
		if err != nil {
			fatal(err)
		}
		emit(t, "fig16.tsv")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
