// Command benchgate is the CI performance-regression gate. It reads
// `go test -bench` output (from files or stdin), compares every
// benchmark present in the committed baseline, and exits non-zero if
// any regressed past the threshold in ns/op or allocs/op:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchgate -baseline BENCH_baseline.json
//	benchgate -baseline BENCH_baseline.json bench.txt more.txt
//
// Refreshing the baseline after an intentional change (new benchmark,
// accepted slowdown, real speedup worth locking in):
//
//	go test -run=NONE -bench=... -benchmem ... | benchgate -baseline BENCH_baseline.json -update
//
// -update merges: measured benchmarks replace their entries, entries
// not measured in this run are preserved. The threshold (default
// 0.30 = +30%) is deliberately generous for ns/op because CI runners
// are noisy; allocs/op is deterministic, so even its generous
// threshold only ever trips on real allocation regressions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgate"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
		threshold    = flag.Float64("threshold", 0.30, "allowed fractional regression (0.30 = +30%)")
		update       = flag.Bool("update", false, "write current results into the baseline instead of gating")
		note         = flag.String("note", "", "baseline note to record with -update")
		quiet        = flag.Bool("q", false, "only print regressions")
	)
	flag.Parse()

	current := make(map[string]benchgate.Result)
	readInto := func(r io.Reader, name string) {
		got, err := benchgate.Parse(r)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for k, v := range got {
			current[k] = v
		}
	}
	if flag.NArg() == 0 {
		readInto(os.Stdin, "stdin")
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		readInto(f, path)
		f.Close()
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	if *update {
		base, err := benchgate.Load(*baselinePath)
		if err != nil {
			if !os.IsNotExist(err) {
				fatal(err)
			}
			base = &benchgate.Baseline{Benchmarks: map[string]benchgate.Result{}}
		}
		if *note != "" {
			base.Note = *note
		}
		benchgate.Update(base, current)
		if err := benchgate.Save(*baselinePath, base); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: recorded %d benchmarks into %s\n", len(current), *baselinePath)
		return
	}

	base, err := benchgate.Load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	findings, failed := benchgate.Compare(base, current, *threshold)
	gated := 0
	for _, f := range findings {
		gated++
		if f.Failed || !*quiet {
			fmt.Println(f)
		}
	}
	fmt.Printf("benchgate: %d measurements gated against %s (threshold +%.0f%%)\n",
		gated, *baselinePath, *threshold*100)
	if failed {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — performance regressed past the threshold; if intentional, refresh the baseline with -update and say why in the PR")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
