// Command provstore manages an on-disk provenance repository of
// SP-workflow specifications and their runs:
//
//	provstore -dir DIR import-spec NAME spec.xml
//	provstore -dir DIR gen-run NAME RUN [-seed N] [-target E]
//	provstore -dir DIR import-run NAME RUN run.xml
//	provstore -dir DIR import-dir NAME DIR [-workers N]
//	provstore -dir DIR export NAME OUT.tar
//	provstore -dir DIR snapshot [NAME]
//	provstore -dir DIR verify [NAME...]
//	provstore -dir DIR ls [NAME]
//	provstore -dir DIR put-version PARENT CHILD spec.xml
//	provstore -dir DIR evolve SPEC_A SPEC_B [-svg out.svg]
//	provstore -dir DIR diff NAME RUN1 RUN2 [-cost unit] [-script] [-across NAME2]
//	provstore -dir DIR matrix NAME [-cost unit]
//	provstore -dir DIR cluster NAME [-k 2] [-seed 1] [-cost unit] [-indexed|-exact]
//	provstore -dir DIR outliers NAME [-k 3] [-cost unit] [-indexed|-exact]
//	provstore -dir DIR nearest NAME RUN [-k 5] [-cost unit] [-indexed|-exact]
//
// Every subcommand also honors -backend fs|memory|object (the storage
// engine under DIR) and -shards N (spread tenant specs across N such
// backends under DIR/shard-0..shard-(N-1) by consistent hashing) —
// the same repository layouts provserved serves.
//
// "import-dir" bulk-imports every *.xml file of a directory as runs
// (named by filename) in one pass: parallel parse, one snapshot
// append, one coalesced change notification. "export" writes a spec
// and all its runs as a tar archive that round-trips through
// import-dir or the service's POST /specs/{spec}/runs:bulk endpoint.
// "snapshot" materializes the store's binary snapshot layer so the
// next cold open (or provserved boot) skips XML parsing entirely.
// "verify" re-hashes every live snapshot frame against the Merkle
// provenance ledger and exits nonzero naming the first divergent
// batch if anything — a flipped byte, a rewritten record, a dropped
// ledger line — no longer matches the attested history.
//
// "matrix" prints the pairwise distance matrix over all stored runs of
// a specification together with a UPGMA dendrogram — the cohort view a
// scientist uses to see which executions behave alike. "cluster",
// "outliers" and "nearest" are the cohort analytics over the same
// cohort: k-medoids partitioning (each cluster reported through its
// medoid, the most representative execution), knn-distance outlier
// scores, and nearest-neighbor lookup for one run. Cohorts of 256+
// runs answer through the triangle-pruning metric index instead of
// the dense O(n²) matrix (sampled k-medoids for cluster); -indexed
// and -exact force either path.
//
// provstore is the one-shot CLI over the repository; its serving
// counterpart is provserved, which keeps the same repository open
// behind an HTTP API with pooled diff engines and result caching.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metricindex"
	"repro/internal/store"
	"repro/internal/view"
	"repro/internal/wfrun"
)

// stdout and stderr are the command's output streams, swappable so
// the CLI tests can run subcommands in-process and read what a user
// would see.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// exitErr unwinds a subcommand to run's recover with an exit code;
// fatal and usage raise it instead of calling os.Exit so tests get a
// return value, not a dead process.
type exitErr struct{ code int }

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole CLI as a function: parse flags, open the
// repository, dispatch the subcommand, return the exit code.
func run(args []string) (code int) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case exitErr:
			code = r.code
		default:
			panic(r)
		}
	}()
	fs := flag.NewFlagSet("provstore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "provstore", "repository directory")
	backend := fs.String("backend", "fs", "storage backend: fs, memory or object")
	shards := fs.Int("shards", 1, "shard the repository across N backends under DIR/shard-i")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	args = fs.Args()
	if len(args) == 0 {
		usage()
	}
	st, err := store.OpenRepository(*dir, *backend, *shards)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	switch args[0] {
	case "import-spec":
		importSpec(st, args[1:])
	case "import-run":
		importRun(st, args[1:])
	case "import-dir":
		importDir(st, args[1:])
	case "export":
		export(st, args[1:])
	case "snapshot":
		snapshot(st, args[1:])
	case "verify":
		verify(st, args[1:])
	case "gen-run":
		genRun(st, args[1:])
	case "ls":
		list(st, args[1:])
	case "put-version":
		putVersion(st, args[1:])
	case "evolve":
		evolveCmd(st, args[1:])
	case "diff":
		diff(st, args[1:])
	case "matrix":
		matrix(st, args[1:])
	case "cluster":
		clusterCmd(st, args[1:])
	case "outliers":
		outliersCmd(st, args[1:])
	case "nearest":
		nearestCmd(st, args[1:])
	default:
		usage()
	}
	return 0
}

func usage() {
	fmt.Fprintln(stderr, "usage: provstore [-dir DIR] [-backend fs|memory|object] [-shards N] import-spec|import-run|import-dir|export|snapshot|verify|gen-run|ls|put-version|evolve|diff|matrix|cluster|outliers|nearest ...")
	panic(exitErr{2})
}

func fatal(err error) {
	fmt.Fprintln(stderr, "provstore:", err)
	panic(exitErr{1})
}

func importSpec(st *store.Store, args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("import-spec NAME FILE"))
	}
	sp, err := cli.LoadSpec(args[1])
	if err != nil {
		fatal(err)
	}
	if err := st.SaveSpec(args[0], sp); err != nil {
		fatal(err)
	}
	stats := sp.Stats()
	fmt.Fprintf(stdout, "stored %s: |V|=%d |E|=%d forks=%d loops=%d\n",
		args[0], stats.V, stats.E, stats.Forks, stats.Loops)
}

func importRun(st *store.Store, args []string) {
	if len(args) != 3 {
		fatal(fmt.Errorf("import-run SPEC RUN FILE"))
	}
	sp, err := st.LoadSpec(args[0])
	if err != nil {
		fatal(err)
	}
	r, err := cli.LoadRun(args[2], sp)
	if err != nil {
		fatal(err)
	}
	if err := st.SaveRun(args[0], args[1], r); err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "stored %s/%s: %d nodes, %d edges\n", args[0], args[1], r.NumNodes(), r.NumEdges())
}

func importDir(st *store.Store, args []string) {
	fs := flag.NewFlagSet("import-dir", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "parallel parse workers (0 = all cores)")
	if len(args) < 2 {
		fatal(fmt.Errorf("import-dir SPEC DIR [flags]"))
	}
	if err := fs.Parse(args[2:]); err != nil {
		fatal(err)
	}
	stats, err := st.ImportDir(args[0], args[1], *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "imported %d runs into %s (%d nodes, %d edges)\n",
		len(stats.Imported), args[0], stats.Nodes, stats.Edges)
}

func export(st *store.Store, args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("export SPEC OUT.tar (or - for stdout)"))
	}
	var out io.Writer = stdout
	if args[1] != "-" {
		f, err := os.Create(args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := st.ExportSpec(args[0], nil, out); err != nil {
		fatal(err)
	}
	if args[1] != "-" {
		runs, _ := st.ListRuns(args[0])
		fmt.Fprintf(stdout, "exported %s (%d runs) to %s\n", args[0], len(runs), args[1])
	}
}

func snapshot(st *store.Store, args []string) {
	specs := args
	if len(specs) == 0 {
		var err error
		specs, err = st.ListSpecs()
		if err != nil {
			fatal(err)
		}
	}
	for _, name := range specs {
		stats, err := st.Snapshot(name)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "%s: %d runs snapshotted (%d written, %d fresh, %d live bytes)\n",
			name, stats.Runs, stats.Written, stats.Fresh, stats.LiveBytes)
	}
}

// verify re-hashes every live snapshot frame against the provenance
// ledger and validates each spec's hash chain. Any divergence exits
// nonzero, naming the first divergent batch.
func verify(st *store.Store, args []string) {
	report, err := st.VerifyLedger(args...)
	if err != nil {
		fatal(err)
	}
	heads, root, err := st.LedgerHeads()
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(heads))
	for name := range heads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "%s: %d batches, head %s\n", name, heads[name].Batches, heads[name].Head)
	}
	fmt.Fprintf(stdout, "repository root %s\n", root)
	fmt.Fprintf(stdout, "verified %d specs, %d batches, %d runs\n", report.Specs, report.Batches, report.Runs)
	if !report.OK() {
		for _, issue := range report.Issues {
			fmt.Fprintln(stderr, "provstore: DIVERGENT", issue.String())
		}
		fmt.Fprintf(stderr, "provstore: first divergent batch: spec %s batch %d\n",
			report.Issues[0].Spec, report.Issues[0].Batch)
		panic(exitErr{1})
	}
	fmt.Fprintln(stdout, "ledger OK")
}

func genRun(st *store.Store, args []string) {
	fs := flag.NewFlagSet("gen-run", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	target := fs.Int("target", 0, "approximate run size in edges (0 = unconstrained)")
	if len(args) < 2 {
		fatal(fmt.Errorf("gen-run SPEC RUN [flags]"))
	}
	if err := fs.Parse(args[2:]); err != nil {
		fatal(err)
	}
	sp, err := st.LoadSpec(args[0])
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	var r *wfrun.Run
	if *target > 0 {
		r, err = gen.RunWithTargetEdges(sp, *target, 0.1, gen.DefaultRunParams(), rng)
	} else {
		r, err = gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	}
	if err != nil {
		fatal(err)
	}
	if err := st.SaveRun(args[0], args[1], r); err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "generated %s/%s: %d nodes, %d edges\n", args[0], args[1], r.NumNodes(), r.NumEdges())
}

func list(st *store.Store, args []string) {
	if len(args) == 0 {
		specs, err := st.ListSpecs()
		if err != nil {
			fatal(err)
		}
		for _, s := range specs {
			runs, _ := st.ListRuns(s)
			fmt.Fprintf(stdout, "%s\t%d runs\n", s, len(runs))
		}
		return
	}
	runs, err := st.ListRuns(args[0])
	if err != nil {
		fatal(err)
	}
	for _, r := range runs {
		fmt.Fprintln(stdout, r)
	}
}

// putVersion registers a new specification version evolved from a
// stored parent: the spec is imported, the lineage link recorded, and
// the parent→child edit mapping computed and snapshotted.
func putVersion(st *store.Store, args []string) {
	if len(args) != 3 {
		fatal(fmt.Errorf("put-version PARENT CHILD FILE"))
	}
	sp, err := cli.LoadSpec(args[2])
	if err != nil {
		fatal(err)
	}
	if err := st.PutSpecVersion(args[0], args[1], sp); err != nil {
		fatal(err)
	}
	m, _, err := st.SpecMapping(args[0], args[1])
	if err != nil {
		fatal(err)
	}
	stats := m.Stats()
	fmt.Fprintf(stdout, "stored %s as version of %s: mapping cost %g, %d modules survive (%d renamed), %d inserted, %d deleted\n",
		args[1], args[0], m.Cost, stats.MappedModules, stats.RenamedModules,
		stats.InsertedModules, stats.DeletedModules)
}

// evolveCmd prints the spec-evolution mapping between two stored
// specification versions.
func evolveCmd(st *store.Store, args []string) {
	fs := flag.NewFlagSet("evolve", flag.ContinueOnError)
	svgOut := fs.String("svg", "", "write the side-by-side overlay SVG to this file")
	if len(args) < 2 {
		fatal(fmt.Errorf("evolve SPEC_A SPEC_B [flags]"))
	}
	if err := fs.Parse(args[2:]); err != nil {
		fatal(err)
	}
	m, linked, err := st.SpecMapping(args[0], args[1])
	if err != nil {
		fatal(err)
	}
	stats := m.Stats()
	link := "not lineage-linked (mapped directly)"
	if linked {
		link = "lineage-linked"
	}
	fmt.Fprintf(stdout, "%s -> %s (%s)\n", args[0], args[1], link)
	fmt.Fprintf(stdout, "mapping cost: %g\n", m.Cost)
	fmt.Fprintf(stdout, "nodes: %d -> %d (%d mapped)\n", stats.ANodes, stats.BNodes, stats.Mapped)
	fmt.Fprintf(stdout, "modules: %d mapped (%d renamed), %d deleted, %d inserted; %d combinators restructured\n",
		stats.MappedModules, stats.RenamedModules, stats.DeletedModules, stats.InsertedModules, stats.RetypedInternals)
	var renamed []string
	for a, b := range m.MappedModules() {
		if a.From != b.From || a.To != b.To {
			renamed = append(renamed, fmt.Sprintf("  renamed: %s -> %s", a, b))
		}
	}
	sort.Strings(renamed)
	for _, line := range renamed {
		fmt.Fprintln(stdout, line)
	}
	if *svgOut != "" {
		keptA := make(map[graph.Edge]bool)
		keptB := make(map[graph.Edge]bool)
		for a, b := range m.MappedModules() {
			keptA[a] = true
			keptB[b] = true
		}
		svg := view.SpecPairSVG(m.A, m.B, keptA, keptB, args[0], args[1],
			fmt.Sprintf("spec evolution cost %g", m.Cost))
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "wrote %s\n", *svgOut)
	}
}

func diff(st *store.Store, args []string) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	costName := fs.String("cost", "unit", "cost model")
	script := fs.Bool("script", false, "print the edit script")
	across := fs.String("across", "", "second spec: RUN2 belongs to this lineage-linked version")
	if len(args) < 3 {
		fatal(fmt.Errorf("diff SPEC RUN1 RUN2 [flags]"))
	}
	if err := fs.Parse(args[3:]); err != nil {
		fatal(err)
	}
	model, err := cli.ParseCost(*costName)
	if err != nil {
		fatal(err)
	}
	if *across != "" {
		// Cheap pre-check, as the service does: reject unlinked pairs
		// before computing a mapping and projection just to discard them.
		linked, err := st.Linked(args[0], *across)
		if err != nil {
			fatal(err)
		}
		if !linked {
			fatal(fmt.Errorf("%s and %s are not lineage-linked; register the version with put-version first", args[0], *across))
		}
		res, _, err := st.CrossDiff(args[0], args[1], *across, args[2], model)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "cross-version distance %s/%s -> %s/%s: %g (%s cost)\n",
			args[0], args[1], *across, args[2], res.Distance, model.Name())
		fmt.Fprintf(stdout, "  run-diff distance (projected): %g\n", res.EngineDistance)
		fmt.Fprintf(stdout, "  dropped by evolution: %g (%d regions)\n", res.Projection.DroppedCost, res.Projection.DroppedRegions)
		fmt.Fprintf(stdout, "  inserted by evolution: %g (%d regions)\n", res.Projection.InsertedCost, res.Projection.InsertedRegions)
		fmt.Fprintf(stdout, "  spec mapping cost: %g\n", res.Mapping.Cost)
		return
	}
	r1, err := st.LoadRun(args[0], args[1])
	if err != nil {
		fatal(err)
	}
	r2, err := st.LoadRun(args[0], args[2])
	if err != nil {
		fatal(err)
	}
	d, err := view.New(r1, r2, model)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(stdout, d.Summary())
	if *script {
		fmt.Fprintln(stdout, "\nedit script (with detected path replacements):")
		fmt.Fprint(stdout, view.RenderCompact(d.Script))
	}
}

func matrix(st *store.Store, args []string) {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	costName := fs.String("cost", "unit", "cost model")
	if len(args) < 1 {
		fatal(fmt.Errorf("matrix SPEC [flags]"))
	}
	if err := fs.Parse(args[1:]); err != nil {
		fatal(err)
	}
	model, err := cli.ParseCost(*costName)
	if err != nil {
		fatal(err)
	}
	names, err := st.ListRuns(args[0])
	if err != nil {
		fatal(err)
	}
	if len(names) < 2 {
		fatal(fmt.Errorf("need at least two stored runs, have %d", len(names)))
	}
	mx, err := st.Cohort(args[0], names, model)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(stdout, mx)
	fmt.Fprintf(stdout, "medoid:  %s\n", names[mx.Medoid()])
	fmt.Fprintf(stdout, "outlier: %s\n\n", names[mx.Outlier()])
	fmt.Fprintln(stdout, "clustering:")
	fmt.Fprint(stdout, mx.Cluster().Render())
}

// cohortMatrix computes the distance matrix over all stored runs,
// shared by the analytics subcommands.
func cohortMatrix(st *store.Store, specName, costName string, minRuns int) *analysis.Matrix {
	model, err := cli.ParseCost(costName)
	if err != nil {
		fatal(err)
	}
	names, err := st.ListRuns(specName)
	if err != nil {
		fatal(err)
	}
	if len(names) < minRuns {
		fatal(fmt.Errorf("need at least %d stored runs, have %d", minRuns, len(names)))
	}
	mx, err := st.Cohort(specName, names, model)
	if err != nil {
		fatal(err)
	}
	return mx
}

func clusterCmd(st *store.Store, args []string) {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	costName := fs.String("cost", "unit", "cost model")
	k := fs.Int("k", 2, "number of clusters")
	seed := fs.Int64("seed", 1, "initialization seed")
	indexed := fs.Bool("indexed", false, "force the metric-index (sampled k-medoids) path")
	exact := fs.Bool("exact", false, "force the dense-matrix (full PAM) path")
	if len(args) < 1 {
		fatal(fmt.Errorf("cluster SPEC [flags]"))
	}
	if err := fs.Parse(args[1:]); err != nil {
		fatal(err)
	}
	if err := cli.ValidateK("k", *k); err != nil {
		fatal(err)
	}
	if useIndexedCohort(st, args[0], *indexed, *exact) {
		ix := cohortIndex(st, args[0], *costName, 2)
		co := ix.Snapshot()
		cl, err := cluster.SampledKMedoids(context.Background(), co, *k, *seed, cluster.SampleOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "sampled k-medoids over %d runs (k=%d, total distance %g):\n",
			co.Len(), cl.K, cl.Cost)
		printClusters(cl, co.Labels())
		printIndexStats(ix)
		return
	}
	mx := cohortMatrix(st, args[0], *costName, 2)
	cl, err := cluster.KMedoids(mx.D, *k, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "k-medoids over %d runs (k=%d, total distance %g, silhouette %.3f):\n",
		len(mx.Labels), cl.K, cl.Cost, cl.Silhouette)
	printClusters(cl, mx.Labels)
}

// printClusters renders a clustering with one indented block per
// cluster, medoids starred.
func printClusters(cl *cluster.Clustering, labels []string) {
	for c := 0; c < cl.K; c++ {
		fmt.Fprintf(stdout, "  cluster %d  medoid %s\n", c, labels[cl.Medoids[c]])
		for _, i := range cl.Members(c) {
			marker := " "
			if i == cl.Medoids[c] {
				marker = "*"
			}
			fmt.Fprintf(stdout, "    %s %s\n", marker, labels[i])
		}
	}
}

func outliersCmd(st *store.Store, args []string) {
	fs := flag.NewFlagSet("outliers", flag.ContinueOnError)
	costName := fs.String("cost", "unit", "cost model")
	k := fs.Int("k", 3, "neighbors per score")
	indexed := fs.Bool("indexed", false, "force the metric-index path")
	exact := fs.Bool("exact", false, "force the dense-matrix path")
	if len(args) < 1 {
		fatal(fmt.Errorf("outliers SPEC [flags]"))
	}
	if err := fs.Parse(args[1:]); err != nil {
		fatal(err)
	}
	if err := cli.ValidateK("k", *k); err != nil {
		fatal(err)
	}
	if useIndexedCohort(st, args[0], *indexed, *exact) {
		ix := cohortIndex(st, args[0], *costName, 2)
		co := ix.Snapshot()
		scores, err := cluster.IndexedOutliers(co, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "%-20s %10s\n", "run", "knn-score")
		for _, s := range scores {
			fmt.Fprintf(stdout, "%-20s %10.3f\n", co.Label(s.Index), s.Score)
		}
		printIndexStats(ix)
		return
	}
	mx := cohortMatrix(st, args[0], *costName, 2)
	scores, err := cluster.Outliers(mx.D, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "%-20s %10s %10s\n", "run", "knn-score", "mean-all")
	for _, s := range scores {
		fmt.Fprintf(stdout, "%-20s %10.3f %10.3f\n", mx.Labels[s.Index], s.Score, s.MeanAll)
	}
}

func nearestCmd(st *store.Store, args []string) {
	fs := flag.NewFlagSet("nearest", flag.ContinueOnError)
	costName := fs.String("cost", "unit", "cost model")
	k := fs.Int("k", 5, "neighbors to report")
	indexed := fs.Bool("indexed", false, "force the metric-index path")
	exact := fs.Bool("exact", false, "force the dense-matrix path")
	if len(args) < 2 {
		fatal(fmt.Errorf("nearest SPEC RUN [flags]"))
	}
	if err := fs.Parse(args[2:]); err != nil {
		fatal(err)
	}
	if err := cli.ValidateK("k", *k); err != nil {
		fatal(err)
	}
	if useIndexedCohort(st, args[0], *indexed, *exact) {
		ix := cohortIndex(st, args[0], *costName, 2)
		co := ix.Snapshot()
		idx, ok := co.IndexOf(args[1])
		if !ok {
			fatal(fmt.Errorf("unknown run %q of %q", args[1], args[0]))
		}
		nn, err := cluster.IndexedNearest(co, idx, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "nearest neighbors of %s/%s:\n", args[0], args[1])
		for _, n := range nn {
			fmt.Fprintf(stdout, "  %-20s %g\n", co.Label(n.Index), n.Distance)
		}
		printIndexStats(ix)
		return
	}
	mx := cohortMatrix(st, args[0], *costName, 2)
	idx := -1
	for i, l := range mx.Labels {
		if l == args[1] {
			idx = i
			break
		}
	}
	if idx < 0 {
		fatal(fmt.Errorf("unknown run %q of %q", args[1], args[0]))
	}
	nn, err := cluster.Nearest(mx.D, idx, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(stdout, "nearest neighbors of %s/%s:\n", args[0], args[1])
	for _, n := range nn {
		fmt.Fprintf(stdout, "  %-20s %g\n", mx.Labels[n.Index], n.Distance)
	}
}

// useIndexedCohort decides the analytics path: explicit -indexed or
// -exact wins, otherwise cohorts at or past the server's default index
// threshold go through the metric index.
func useIndexedCohort(st *store.Store, specName string, indexed, exact bool) bool {
	if indexed && exact {
		fatal(fmt.Errorf("-indexed and -exact are mutually exclusive"))
	}
	if indexed {
		return true
	}
	if exact {
		return false
	}
	names, err := st.ListRuns(specName)
	if err != nil {
		fatal(err)
	}
	return len(names) >= analysis.DefaultIndexThreshold
}

// cohortIndex builds a one-shot metric index over all stored runs of a
// specification: m·n diffs instead of the dense matrix's n(n-1)/2.
func cohortIndex(st *store.Store, specName, costName string, minRuns int) *metricindex.Index {
	model, err := cli.ParseCost(costName)
	if err != nil {
		fatal(err)
	}
	names, err := st.ListRuns(specName)
	if err != nil {
		fatal(err)
	}
	if len(names) < minRuns {
		fatal(fmt.Errorf("need at least %d stored runs, have %d", minRuns, len(names)))
	}
	runs := make([]*wfrun.Run, len(names))
	for i, n := range names {
		if runs[i], err = st.LoadRun(specName, n); err != nil {
			fatal(err)
		}
	}
	ix := metricindex.New(model, metricindex.Options{})
	if err := ix.Reset(names, runs); err != nil {
		fatal(err)
	}
	return ix
}

// printIndexStats reports how much exact differencing the index
// avoided, mirroring the server's /stats metric_index counters.
func printIndexStats(ix *metricindex.Index) {
	exact, pruned := ix.ExactDiffs(), ix.PrunedPairs()
	total := exact + pruned
	if total == 0 {
		return
	}
	fmt.Fprintf(stdout, "index: %d exact diffs, %d pruned (%.1f%% of %d candidate pairs), %d landmarks\n",
		exact, pruned, 100*float64(pruned)/float64(total), total, ix.Landmarks())
}
