package main

// First tests for the provstore CLI, running the real run() entry
// point in-process with captured output — the commands a user types,
// checked end to end against a real repository directory.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/wfxml"
)

// runCLI invokes the CLI entry point with captured stdout/stderr.
func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var ob, eb bytes.Buffer
	stdout, stderr = &ob, &eb
	defer func() { stdout, stderr = os.Stdout, os.Stderr }()
	return run(args), ob.String(), eb.String()
}

// writeFixtures renders the PA catalog spec and n runs as XML files
// and returns their paths.
func writeFixtures(t *testing.T, dir string, n int) (specPath string, runPaths []string) {
	t.Helper()
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, sp, "pa"); err != nil {
		t.Fatal(err)
	}
	specPath = filepath.Join(dir, "spec.xml")
	if err := os.WriteFile(specPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		name := fmt.Sprintf("r%d", i)
		if err := wfxml.EncodeRun(&buf, r, name); err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name+".xml")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		runPaths = append(runPaths, p)
	}
	return specPath, runPaths
}

func TestImportDiffVerifyHappyPath(t *testing.T) {
	for _, backend := range []string{"fs", "object"} {
		t.Run(backend, func(t *testing.T) {
			repo := t.TempDir()
			specPath, runs := writeFixtures(t, t.TempDir(), 2)
			base := []string{"-dir", repo, "-backend", backend}

			code, out, errOut := runCLI(t, append(base, "import-spec", "pa", specPath)...)
			if code != 0 || !strings.Contains(out, "stored pa:") {
				t.Fatalf("import-spec: code %d out %q err %q", code, out, errOut)
			}
			for i, rp := range runs {
				code, out, errOut = runCLI(t, append(base, "import-run", "pa", fmt.Sprintf("r%d", i), rp)...)
				if code != 0 || !strings.Contains(out, "stored pa/r") {
					t.Fatalf("import-run: code %d out %q err %q", code, out, errOut)
				}
			}

			code, out, _ = runCLI(t, append(base, "ls")...)
			if code != 0 || !strings.Contains(out, "pa\t2 runs") {
				t.Fatalf("ls: code %d out %q", code, out)
			}

			code, out, errOut = runCLI(t, append(base, "diff", "pa", "r0", "r1")...)
			if code != 0 || !strings.Contains(out, "distance") {
				t.Fatalf("diff: code %d out %q err %q", code, out, errOut)
			}

			// A second process over the same directory sees everything
			// and the ledger verifies green.
			code, out, errOut = runCLI(t, append(base, "verify")...)
			if code != 0 || !strings.Contains(out, "ledger OK") {
				t.Fatalf("verify: code %d out %q err %q", code, out, errOut)
			}
		})
	}
}

func TestShardedRepositoryRoundTrip(t *testing.T) {
	repo := t.TempDir()
	specPath, runs := writeFixtures(t, t.TempDir(), 2)
	base := []string{"-dir", repo, "-shards", "2"}

	if code, _, errOut := runCLI(t, append(base, "import-spec", "pa", specPath)...); code != 0 {
		t.Fatalf("import-spec: code %d err %q", code, errOut)
	}
	for i, rp := range runs {
		if code, _, errOut := runCLI(t, append(base, "import-run", "pa", fmt.Sprintf("r%d", i), rp)...); code != 0 {
			t.Fatalf("import-run: code %d err %q", code, errOut)
		}
	}
	// The spec landed wholly on one shard subdirectory.
	if _, err := os.Stat(filepath.Join(repo, "shard-0", "pa")); err != nil {
		if _, err2 := os.Stat(filepath.Join(repo, "shard-1", "pa")); err2 != nil {
			t.Fatalf("spec on neither shard: %v / %v", err, err2)
		}
	}
	code, out, errOut := runCLI(t, append(base, "verify")...)
	if code != 0 || !strings.Contains(out, "ledger OK") {
		t.Fatalf("sharded verify: code %d out %q err %q", code, out, errOut)
	}
	// Reopening with a different shard count still finds the spec:
	// discovery pins it to the shard that holds it.
	code, out, _ = runCLI(t, "-dir", repo, "-shards", "3", "diff", "pa", "r0", "r1")
	if code != 0 || !strings.Contains(out, "distance") {
		t.Fatalf("diff after reshard: code %d out %q", code, out)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	repo := t.TempDir()
	specPath, runs := writeFixtures(t, t.TempDir(), 1)
	if code, _, _ := runCLI(t, "-dir", repo, "import-spec", "pa", specPath); code != 0 {
		t.Fatal("seed import failed")
	}
	if code, _, _ := runCLI(t, "-dir", repo, "import-run", "pa", "r0", runs[0]); code != 0 {
		t.Fatal("seed run failed")
	}

	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"no subcommand", []string{"-dir", repo}, 2, "usage:"},
		{"unknown subcommand", []string{"-dir", repo, "frobnicate"}, 2, "usage:"},
		{"unknown backend", []string{"-dir", repo, "-backend", "s3", "ls"}, 1, "unknown backend kind"},
		{"traversal spec name", []string{"-dir", repo, "import-spec", "../evil", specPath}, 1, "name"},
		{"separator run name", []string{"-dir", repo, "import-run", "pa", "a/b", runs[0]}, 1, "name"},
		{"missing spec file", []string{"-dir", repo, "import-spec", "pb", filepath.Join(repo, "nope.xml")}, 1, "no such file"},
		{"diff unknown run", []string{"-dir", repo, "diff", "pa", "r0", "zz"}, 1, "zz"},
		{"cluster bad k", []string{"-dir", repo, "cluster", "pa", "-k", "0"}, 1, "-k must be at least 1"},
		{"outliers bad k", []string{"-dir", repo, "outliers", "pa", "-k", "-3"}, 1, "-k must be at least 1"},
		{"diff bad cost", []string{"-dir", repo, "diff", "pa", "r0", "r0", "-cost", "bogus"}, 1, "cost"},
		{"matrix one run", []string{"-dir", repo, "matrix", "pa"}, 1, "at least two stored runs"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("code = %d, want %d (out %q err %q)", code, tc.wantCode, out, errOut)
			}
			if !strings.Contains(errOut, tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", errOut, tc.wantErr)
			}
		})
	}
}

// TestAnalyticsSubcommands drives the cohort analytics verbs — matrix,
// cluster, outliers, nearest — over one repository, through both the
// dense-matrix and metric-index paths, after a bulk import-dir.
func TestAnalyticsSubcommands(t *testing.T) {
	repo := t.TempDir()
	fixdir := t.TempDir()
	specPath, _ := writeFixtures(t, fixdir, 4)
	if code, _, errOut := runCLI(t, "-dir", repo, "import-spec", "pa", specPath); code != 0 {
		t.Fatalf("import-spec: %q", errOut)
	}
	// import-dir picks up every run XML in the directory (skipping
	// spec.xml) in sorted order.
	code, out, errOut := runCLI(t, "-dir", repo, "import-dir", "pa", fixdir)
	if code != 0 || !strings.Contains(out, "imported 4 runs into pa") {
		t.Fatalf("import-dir: code %d out %q err %q", code, out, errOut)
	}

	code, out, errOut = runCLI(t, "-dir", repo, "matrix", "pa")
	if code != 0 || !strings.Contains(out, "medoid:") || !strings.Contains(out, "clustering:") {
		t.Fatalf("matrix: code %d out %q err %q", code, out, errOut)
	}

	for _, path := range []string{"-exact", "-indexed"} {
		code, out, errOut = runCLI(t, "-dir", repo, "cluster", "pa", "-k", "2", "-seed", "3", path)
		if code != 0 || !strings.Contains(out, "medoid") {
			t.Fatalf("cluster %s: code %d out %q err %q", path, code, out, errOut)
		}
		code, out, errOut = runCLI(t, "-dir", repo, "outliers", "pa", "-k", "2", path)
		if code != 0 || !strings.Contains(out, "knn-score") {
			t.Fatalf("outliers %s: code %d out %q err %q", path, code, out, errOut)
		}
		code, out, errOut = runCLI(t, "-dir", repo, "nearest", "pa", "r0", "-k", "2", path)
		if code != 0 || !strings.Contains(out, "nearest neighbors of pa/r0") {
			t.Fatalf("nearest %s: code %d out %q err %q", path, code, out, errOut)
		}
	}
	// -indexed and -exact together is a usage error.
	if code, _, errOut := runCLI(t, "-dir", repo, "cluster", "pa", "-indexed", "-exact"); code != 1 ||
		!strings.Contains(errOut, "mutually exclusive") {
		t.Fatalf("indexed+exact: code %d err %q", code, errOut)
	}
	// nearest for a run that does not exist names the run.
	if code, _, errOut := runCLI(t, "-dir", repo, "nearest", "pa", "zz"); code != 1 ||
		!strings.Contains(errOut, "zz") {
		t.Fatalf("nearest unknown: code %d err %q", code, errOut)
	}
}

// TestSpecEvolutionSubcommands stores a second version of a spec and
// prints the evolution mapping, with the SVG overlay on the side.
func TestSpecEvolutionSubcommands(t *testing.T) {
	repo := t.TempDir()
	specPath, _ := writeFixtures(t, t.TempDir(), 0)
	if code, _, errOut := runCLI(t, "-dir", repo, "import-spec", "pa", specPath); code != 0 {
		t.Fatalf("import-spec: %q", errOut)
	}
	code, out, errOut := runCLI(t, "-dir", repo, "put-version", "pa", "pa2", specPath)
	if code != 0 || !strings.Contains(out, "stored pa2 as version of pa") {
		t.Fatalf("put-version: code %d out %q err %q", code, out, errOut)
	}
	svgPath := filepath.Join(t.TempDir(), "evolve.svg")
	code, out, errOut = runCLI(t, "-dir", repo, "evolve", "pa", "pa2", "-svg", svgPath)
	if code != 0 || !strings.Contains(out, "lineage-linked") || !strings.Contains(out, "mapping cost: 0") {
		t.Fatalf("evolve: code %d out %q err %q", code, out, errOut)
	}
	if fi, err := os.Stat(svgPath); err != nil || fi.Size() == 0 {
		t.Fatalf("evolve wrote no SVG: %v", err)
	}
	// Mapping against a spec that is not stored fails cleanly.
	if code, _, errOut := runCLI(t, "-dir", repo, "evolve", "pa", "nope"); code != 1 || errOut == "" {
		t.Fatalf("evolve missing spec: code %d err %q", code, errOut)
	}
}

// TestExportSnapshotPipeline drives the maintenance verbs over one
// repository: snapshot materializes the binary layer, export writes a
// tar, and gen-run adds a deterministic run.
func TestExportSnapshotPipeline(t *testing.T) {
	repo := t.TempDir()
	out := t.TempDir()
	specPath, runs := writeFixtures(t, t.TempDir(), 1)
	if code, _, _ := runCLI(t, "-dir", repo, "import-spec", "pa", specPath); code != 0 {
		t.Fatal("import-spec failed")
	}
	if code, _, _ := runCLI(t, "-dir", repo, "import-run", "pa", "r0", runs[0]); code != 0 {
		t.Fatal("import-run failed")
	}
	code, o, errOut := runCLI(t, "-dir", repo, "gen-run", "pa", "g0", "-seed", "7")
	if code != 0 || !strings.Contains(o, "generated pa/g0") {
		t.Fatalf("gen-run: code %d out %q err %q", code, o, errOut)
	}
	code, o, errOut = runCLI(t, "-dir", repo, "snapshot")
	if code != 0 || !strings.Contains(o, "pa: 2 runs snapshotted") {
		t.Fatalf("snapshot: code %d out %q err %q", code, o, errOut)
	}
	tarPath := filepath.Join(out, "pa.tar")
	code, o, errOut = runCLI(t, "-dir", repo, "export", "pa", tarPath)
	if code != 0 || !strings.Contains(o, "exported pa (2 runs)") {
		t.Fatalf("export: code %d out %q err %q", code, o, errOut)
	}
	if fi, err := os.Stat(tarPath); err != nil || fi.Size() == 0 {
		t.Fatalf("export wrote nothing: %v", err)
	}
}
