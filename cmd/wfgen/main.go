// Command wfgen generates SP-workflow specifications and runs as XML:
//
//	wfgen spec -edges 100 -ratio 1 -forks 5 -loops 5 -o spec.xml
//	wfgen spec -catalog PA -o pa.xml
//	wfgen run -spec spec.xml -probp 0.95 -probf 0.5 -maxf 4 -probl 0.5 -maxl 4 -o run.xml
//	wfgen run -spec spec.xml -target 500 -o run.xml
//
// It also doubles as the load driver for a running provserved:
//
//	wfgen load -url http://localhost:8077 -spec demo -duration 30s -o BENCH_load.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	provdiff "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "spec":
		genSpec(os.Args[2:])
	case "run":
		genRun(os.Args[2:])
	case "load":
		runLoad(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wfgen spec|run|load [flags]")
	os.Exit(2)
}

func genSpec(args []string) {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	var (
		edges   = fs.Int("edges", 50, "number of specification edges")
		ratio   = fs.Float64("ratio", 1, "series/parallel composition ratio r")
		forks   = fs.Int("forks", 3, "number of fork subgraphs")
		loops   = fs.Int("loops", 1, "number of loop subgraphs")
		catalog = fs.String("catalog", "", "emit a Table I workflow (PA, EMBOSS, SAXPF, MB, PGAQ, BAIDD) instead")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("o", "", "output file (default stdout)")
		name    = fs.String("name", "", "specification name attribute")
	)
	must(fs.Parse(args))
	var sp *provdiff.Spec
	var err error
	if *catalog != "" {
		sp, err = provdiff.Catalog(*catalog)
		if *name == "" {
			*name = *catalog
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		sp, err = provdiff.RandomSpec(provdiff.SpecConfig{
			Edges: *edges, SeriesRatio: *ratio, Forks: *forks, Loops: *loops,
		}, rng)
	}
	must(err)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		must(err)
		defer f.Close()
		w = f
	}
	must(provdiff.EncodeSpec(w, sp, *name))
}

func genRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		specPath = fs.String("spec", "", "specification XML file (required)")
		probp    = fs.Float64("probp", 0.95, "probability each parallel branch is taken")
		probf    = fs.Float64("probf", 0.5, "probability each fork copy is taken")
		maxf     = fs.Int("maxf", 4, "maximum fork copies")
		probl    = fs.Float64("probl", 0.5, "probability each loop iteration is taken")
		maxl     = fs.Int("maxl", 4, "maximum loop iterations")
		target   = fs.Int("target", 0, "if > 0, aim for this many run edges")
		seed     = fs.Int64("seed", 1, "random seed")
		out      = fs.String("o", "", "output file (default stdout)")
		name     = fs.String("name", "", "run name attribute")
	)
	must(fs.Parse(args))
	if *specPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*specPath)
	must(err)
	sp, err := provdiff.DecodeSpec(f)
	f.Close()
	must(err)
	rng := rand.New(rand.NewSource(*seed))
	params := provdiff.RunParams{ProbP: *probp, ProbF: *probf, MaxF: *maxf, ProbL: *probl, MaxL: *maxl}
	var r *provdiff.Run
	if *target > 0 {
		r, err = provdiff.RunWithTargetEdges(sp, *target, 0.1, params, rng)
	} else {
		r, err = provdiff.RandomRun(sp, params, rng)
	}
	must(err)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		must(err)
		defer f.Close()
		w = f
	}
	must(provdiff.EncodeRun(w, r, *name))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}
