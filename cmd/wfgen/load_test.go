package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	provdiff "repro"
)

func catalogSpec(t *testing.T) *provdiff.Spec {
	t.Helper()
	sp, err := provdiff.Catalog("PA")
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return sp
}

// Same spec + same seed must yield a byte-identical workload: the
// load driver's traffic is reproducible across hosts and reruns.
func TestSynthesizeWorkloadDeterministic(t *testing.T) {
	sp := catalogSpec(t)
	a, err := synthesizeWorkload(sp, 42, 6)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	b, err := synthesizeWorkload(sp, 42, 6)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if len(a.Runs) != 6 || len(a.Live) != 6 {
		t.Fatalf("workload sizes = %d runs, %d live; want 6, 6", len(a.Runs), len(a.Live))
	}
	for i := range a.Runs {
		if !bytes.Equal(a.Runs[i], b.Runs[i]) {
			t.Errorf("run %d differs between identically seeded workloads", i)
		}
	}
	for i := range a.Live {
		if len(a.Live[i]) != len(b.Live[i]) {
			t.Fatalf("live stream %d: %d vs %d events", i, len(a.Live[i]), len(b.Live[i]))
		}
		for j := range a.Live[i] {
			if a.Live[i][j] != b.Live[i][j] {
				t.Errorf("live stream %d event %d differs: %+v vs %+v", i, j, a.Live[i][j], b.Live[i][j])
			}
		}
		if len(a.Live[i]) == 0 {
			t.Errorf("live stream %d is empty", i)
		}
	}
}

// A different seed must actually change the workload — otherwise the
// determinism above would be vacuous.
func TestSynthesizeWorkloadSeedSensitive(t *testing.T) {
	sp := catalogSpec(t)
	a, err := synthesizeWorkload(sp, 1, 6)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	b, err := synthesizeWorkload(sp, 2, 6)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	same := true
	for i := range a.Runs {
		if !bytes.Equal(a.Runs[i], b.Runs[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical workloads")
	}
}

// fakeClock hands out strictly increasing instants, advancing by a
// scripted step on every reading.
type fakeClock struct {
	t     time.Time
	steps []time.Duration
	i     int
}

func (c *fakeClock) now() time.Time {
	cur := c.t
	if c.i < len(c.steps) {
		c.t = c.t.Add(c.steps[c.i])
		c.i++
	}
	return cur
}

// The recorder's percentile math is exercised against a fake clock so
// each sample's latency is exact: 100 ingest samples at 1..100ms give
// p50 = 50ms and p99 = 99ms under nearest-rank.
func TestRecorderLatencyAccounting(t *testing.T) {
	var steps []time.Duration
	for i := 1; i <= 100; i++ {
		// Each observe reads the clock twice: advance by the sample's
		// latency on the first read, by nothing on the second.
		steps = append(steps, time.Duration(i)*time.Millisecond, 0)
	}
	clock := &fakeClock{t: time.Unix(0, 0), steps: steps}
	rec := newRecorder(clock.now)
	for i := 1; i <= 100; i++ {
		op := func() error { return nil }
		if i%10 == 0 {
			op = func() error { return fmt.Errorf("boom %d", i) }
		}
		rec.observe("ingest", op)
	}
	r, ok := rec.report()["ingest"]
	if !ok {
		t.Fatal("no ingest route in report")
	}
	if r.Count != 100 {
		t.Fatalf("count = %d, want 100", r.Count)
	}
	if r.Errors != 10 {
		t.Fatalf("errors = %d, want 10", r.Errors)
	}
	if r.P50MS != 50 {
		t.Fatalf("p50 = %gms, want 50", r.P50MS)
	}
	if r.P99MS != 99 {
		t.Fatalf("p99 = %gms, want 99", r.P99MS)
	}
}

// Context-cancellation errors are deadline noise and must not count
// as route errors or samples.
func TestRecorderDropsContextErrors(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0), steps: []time.Duration{time.Millisecond, 0, time.Millisecond, 0}}
	rec := newRecorder(clock.now)
	rec.observe("ingest", func() error {
		return fmt.Errorf("Get \"x\": %w", errors.New("real failure"))
	})
	rec.observe("ingest", func() error {
		return fmt.Errorf("Get \"x\": %w", context.Canceled)
	})
	r := rec.report()["ingest"]
	if r.Count != 1 || r.Errors != 1 {
		t.Fatalf("count=%d errors=%d, want 1/1 (canceled sample dropped)", r.Count, r.Errors)
	}
}

// percentile edge cases: empty input and single sample.
func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Fatalf("percentile(nil) = %g, want 0", got)
	}
	if got := percentile([]float64{7}, 0.5); got != 7 {
		t.Fatalf("percentile([7], .5) = %g, want 7", got)
	}
	if got := percentile([]float64{1, 2, 3, 4}, 1.0); got != 4 {
		t.Fatalf("percentile(1..4, 1.0) = %g, want 4", got)
	}
}
