package main

// wfgen load: a deterministic mixed-traffic load driver for
// provserved. It fetches the target specification from the running
// service, synthesizes a seeded workload (complete run documents for
// sync ingest plus event streams for live ingest), then drives
// -clients concurrent workers through an ingest/diff/live/metrics mix
// for -duration, with one watcher attached to the spec's drift stream
// throughout. The report is JSON per route — count, errors, p50/p99
// latency — and the exit status enforces the CI gates: nonzero when
// any route errored (unless -fail-on-errors=false) or when ingest p99
// exceeds -max-p99-ingest.
//
//	wfgen load -url http://localhost:8077 -spec demo -duration 30s \
//	           -clients 4 -seed 1 -o BENCH_load.json -max-p99-ingest 250

import (
	"archive/tar"
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	provdiff "repro"
)

// workload is the deterministic input of one load session: complete
// run documents for sync ingest and event streams for live ingest.
// Same spec + same seed + same size → byte-identical workload.
type workload struct {
	Runs [][]byte               // encoded run XML documents
	Live [][]provdiff.LiveEvent // event streams, one per live run
}

// synthesizeWorkload generates n ingest documents and n live event
// streams from one seeded source. Pure: no clock, no global state.
func synthesizeWorkload(sp *provdiff.Spec, seed int64, n int) (*workload, error) {
	rng := rand.New(rand.NewSource(seed))
	w := &workload{}
	for i := 0; i < n; i++ {
		r, err := provdiff.RandomRun(sp, provdiff.DefaultRunParams(), rng)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := provdiff.EncodeRun(&buf, r, fmt.Sprintf("load-%d", i)); err != nil {
			return nil, err
		}
		w.Runs = append(w.Runs, buf.Bytes())
		lr, err := provdiff.RandomRun(sp, provdiff.DefaultRunParams(), rng)
		if err != nil {
			return nil, err
		}
		w.Live = append(w.Live, provdiff.RunEvents(lr))
	}
	return w, nil
}

// recorder collects per-route latency samples and error counts. The
// clock is injectable so the accounting is unit-testable.
type recorder struct {
	now func() time.Time

	mu      sync.Mutex
	samples map[string][]float64 // milliseconds
	errors  map[string]int64
}

func newRecorder(now func() time.Time) *recorder {
	if now == nil {
		now = time.Now
	}
	return &recorder{now: now, samples: map[string][]float64{}, errors: map[string]int64{}}
}

// observe runs op, charging its wall time to route; a returned error
// is counted, not propagated. Context cancellation is the session
// deadline firing mid-request — shutdown noise, not a service
// failure — so those samples are dropped entirely.
func (rec *recorder) observe(route string, op func() error) {
	t0 := rec.now()
	err := op()
	ms := float64(rec.now().Sub(t0).Nanoseconds()) / 1e6
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.samples[route] = append(rec.samples[route], ms)
	if err != nil {
		rec.errors[route]++
	}
}

// percentile is nearest-rank over a sorted sample set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// routeReport is one route's line of the JSON report.
type routeReport struct {
	Count  int     `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// report folds the recorder into the final per-route summary.
func (rec *recorder) report() map[string]routeReport {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make(map[string]routeReport, len(rec.samples))
	for route, s := range rec.samples {
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		out[route] = routeReport{
			Count:  len(sorted),
			Errors: rec.errors[route],
			P50MS:  percentile(sorted, 0.50),
			P99MS:  percentile(sorted, 0.99),
		}
	}
	return out
}

// fetchSpec pulls the target specification out of the service's
// export tar so the workload validates against exactly what the
// server stores.
func fetchSpec(client *http.Client, baseURL, specName string) (*provdiff.Spec, error) {
	resp, err := client.Get(baseURL + "/v1/specs/" + specName + "/export")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("export %s: HTTP %d", specName, resp.StatusCode)
	}
	tr := tar.NewReader(resp.Body)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("export %s: no spec.xml in archive", specName)
		}
		if err != nil {
			return nil, err
		}
		if hdr.Name == "spec.xml" {
			return provdiff.DecodeSpec(tr)
		}
	}
}

// listRuns names the runs already stored for the spec — diff targets.
func listRuns(client *http.Client, baseURL, specName string) ([]string, error) {
	resp, err := client.Get(baseURL + "/v1/specs/" + specName + "/runs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("list runs: HTTP %d", resp.StatusCode)
	}
	var body struct {
		Runs []string `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Runs, nil
}

// expect2xx performs a request and drains the body, failing on
// transport errors and non-2xx statuses alike.
func expect2xx(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return nil
}

// watchStream attaches to the spec's drift stream for the whole
// session, counting lines; every line read is one "watch" sample with
// near-zero latency, errors surface as watch errors. It uses its own
// client without a request timeout — the stream is supposed to stay
// open until ctx expires, and http.Client.Timeout covers body reads.
func watchStream(ctx context.Context, baseURL, specName string, rec *recorder) {
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/v1/specs/"+specName+"/watch", nil)
	if err != nil {
		return
	}
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		rec.observe("watch", func() error { return err })
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		rec.observe("watch", func() error {
			if !json.Valid(line) {
				return fmt.Errorf("invalid watch line %q", line)
			}
			return nil
		})
	}
}

func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var (
		baseURL   = fs.String("url", "http://localhost:8077", "provserved base URL")
		specName  = fs.String("spec", "demo", "target specification")
		duration  = fs.Duration("duration", 30*time.Second, "how long to drive traffic")
		clients   = fs.Int("clients", 4, "concurrent workers")
		seed      = fs.Int64("seed", 1, "workload synthesis seed")
		out       = fs.String("o", "", "report file (default stdout)")
		maxP99    = fs.Float64("max-p99-ingest", 0, "fail if ingest p99 exceeds this many ms (0 disables)")
		failOnErr = fs.Bool("fail-on-errors", true, "exit nonzero when any route recorded errors")
	)
	must(fs.Parse(args))
	client := &http.Client{Timeout: 30 * time.Second}

	sp, err := fetchSpec(client, *baseURL, *specName)
	must(err)
	seededRuns, err := listRuns(client, *baseURL, *specName)
	must(err)

	// Enough distinct documents that workers never reuse a name within
	// the session; names also carry the seed so reruns against a
	// persistent store don't collide with a prior session's runs.
	perClient := 512
	wl, err := synthesizeWorkload(sp, *seed, *clients*2)
	must(err)

	rec := newRecorder(nil)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	go watchStream(ctx, *baseURL, *specName, rec)

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ingested := []string{}
			for i := 0; ctx.Err() == nil && i < perClient; i++ {
				switch i % 4 {
				case 0: // sync ingest of a complete run document
					name := fmt.Sprintf("l%d-c%d-%d", *seed, c, i)
					doc := wl.Runs[(c+i)%len(wl.Runs)]
					rec.observe("ingest", func() error {
						req, err := http.NewRequestWithContext(ctx, "POST",
							*baseURL+"/v1/specs/"+*specName+"/runs/"+name, bytes.NewReader(doc))
						if err != nil {
							return err
						}
						return expect2xx(client, req)
					})
					ingested = append(ingested, name)
				case 1: // diff two stored runs
					pool := seededRuns
					if len(pool) < 2 {
						pool = ingested
					}
					if len(pool) < 2 {
						continue
					}
					a, b := pool[(c+i)%len(pool)], pool[(c+i+1)%len(pool)]
					rec.observe("diff", func() error {
						req, err := http.NewRequestWithContext(ctx, "GET",
							*baseURL+"/v1/specs/"+*specName+"/diff/"+a+"/"+b, nil)
						if err != nil {
							return err
						}
						return expect2xx(client, req)
					})
				case 2: // live ingest: half the events, the rest, complete
					name := fmt.Sprintf("lv%d-c%d-%d", *seed, c, i)
					evs := wl.Live[(c+i)%len(wl.Live)]
					half := len(evs) / 2
					post := func(evs []provdiff.LiveEvent, q string) error {
						body, err := json.Marshal(evs)
						if err != nil {
							return err
						}
						req, err := http.NewRequestWithContext(ctx, "PATCH",
							*baseURL+"/v1/specs/"+*specName+"/runs/"+name+"/events"+q, bytes.NewReader(body))
						if err != nil {
							return err
						}
						return expect2xx(client, req)
					}
					rec.observe("live_events", func() error { return post(evs[:half], "") })
					rec.observe("live_complete", func() error { return post(evs[half:], "?complete=1") })
				case 3: // observability scrape
					rec.observe("metrics", func() error {
						req, err := http.NewRequestWithContext(ctx, "GET", *baseURL+"/v1/metrics", nil)
						if err != nil {
							return err
						}
						return expect2xx(client, req)
					})
				}
			}
		}(c)
	}
	wg.Wait()
	cancel()

	routes := rec.report()
	payload := map[string]any{
		"spec":     *specName,
		"seed":     *seed,
		"clients":  *clients,
		"duration": duration.String(),
		"routes":   routes,
	}
	enc, err := json.MarshalIndent(payload, "", "  ")
	must(err)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		must(err)
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, string(enc))

	failed := false
	if *failOnErr {
		for route, r := range routes {
			if r.Errors > 0 {
				fmt.Fprintf(os.Stderr, "wfgen load: route %s recorded %d errors\n", route, r.Errors)
				failed = true
			}
		}
	}
	if *maxP99 > 0 {
		if r, ok := routes["ingest"]; ok && r.P99MS > *maxP99 {
			fmt.Fprintf(os.Stderr, "wfgen load: ingest p99 %.1fms exceeds bound %.1fms\n", r.P99MS, *maxP99)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
