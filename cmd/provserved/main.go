// Command provserved serves an on-disk provenance repository over
// HTTP — the long-running counterpart of the provstore CLI, keeping
// differencing engines and parsed runs warm across requests:
//
//	provserved -dir DIR [-addr :8077] [-cache 512] [-demo N] [-seed S] [-preload=true]
//	           [-backend fs|memory|object] [-shards N]
//	           [-index-threshold N] [-landmarks M]
//	           [-ingest-queue 1024] [-ingest-batch 64] [-ingest-maxwait 0]
//	           [-timing-log FILE]
//
// The API is versioned under /v1; the unversioned routes of earlier
// releases still answer identically but carry a Deprecation header:
//
//	GET    /v1/specs                          list specifications
//	GET    /v1/specs/{spec}/runs              list runs
//	POST   /v1/specs/{spec}/runs/{run}        import a run (XML body; ?async=1
//	                                          returns 202 + a ticket)
//	POST   /v1/specs/{spec}/runs:bulk         bulk-import a cohort (tar or NDJSON)
//	GET    /v1/specs/{spec}/export            export spec + runs as a tar stream
//	DELETE /v1/specs/{spec}/runs/{run}        delete a run
//	GET    /v1/specs/{spec}/diff/{a}/{b}      distance + edit script (?cost=unit|length|power:EPS)
//	                                          (?across=SPEC2 for cross-version diffs)
//	GET    /v1/specs/{spec}/diff/{a}/{b}/svg  side-by-side SVG diff rendering
//	GET    /v1/specs/{a}/evolve/{b}           spec-evolution mapping between versions
//	GET    /v1/specs/{a}/evolve/{b}/svg       spec overlay (deleted red, inserted green)
//	GET    /v1/specs/{spec}/cohort            distance matrix + dendrogram (?stream=1)
//	GET    /v1/specs/{spec}/cluster           k-medoids partitioning
//	GET    /v1/specs/{spec}/outliers          knn outlier scores
//	GET    /v1/specs/{spec}/nearest           nearest neighbors (?run=)
//	PATCH  /v1/specs/{spec}/runs/{run}/events append live node-status events
//	                                          (?complete=1 finalizes the run)
//	GET    /v1/specs/{spec}/watch             NDJSON drift stream for live runs
//	GET    /v1/tickets/{id}                   async ingest ticket status
//	GET    /v1/metrics                        Prometheus text exposition
//	GET    /v1/stats                          request/cache/engine/ingest counters
//	GET    /v1/healthz                        liveness probe
//
// Single-run imports flow through a group-commit pipeline: concurrent
// importers coalesce into one snapshot append + one manifest save per
// batch. -ingest-queue bounds the backlog (past it clients get 429),
// -ingest-batch caps runs per commit, and -ingest-maxwait adds an
// optional linger window for batching under bursty async load (0
// commits as soon as the queue drains).
//
// -backend selects the storage engine (a local directory tree, an
// in-memory store for ephemeral demos, or a content-addressed
// object-store layout) and -shards N spreads tenant specs across N
// such backends under DIR/shard-0..shard-(N-1) by consistent hashing.
//
// -demo N seeds an empty repository with the paper's protein
// annotation workflow ("demo") and N random runs, plus a mutated,
// lineage-linked version "demo-v2" with N runs of its own, so a fresh
// service can be exercised immediately — including the cross-version
// endpoints (CI smoke-tests do exactly this).
// -preload (default on) boots warm: parsed runs are decoded from the
// store's binary snapshot layer, missing snapshots are materialized,
// and cohort matrices are prebuilt, so a restarted service answers
// its first diff at steady-state speed. SIGINT/SIGTERM trigger a
// graceful drain before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gen"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		dir     = flag.String("dir", "provstore", "repository directory")
		backend = flag.String("backend", "fs", "storage backend: fs, memory or object")
		shards  = flag.Int("shards", 1, "shard the repository across N backends under DIR/shard-i")
		cache   = flag.Int("cache", server.DefaultCacheSize, "diff-result LRU capacity (0 disables)")
		demo    = flag.Int("demo", 0, "seed a 'demo' spec with N generated runs if absent")
		seed    = flag.Int64("seed", 1, "random seed for -demo run generation")
		preload = flag.Bool("preload", true, "warm parsed-run and cohort-matrix caches from snapshots at boot")
		indexTh = flag.Int("index-threshold", 0, "cohort size at which analytics switch to the metric index (0 = default, negative disables)")
		marks   = flag.Int("landmarks", 0, "metric-index landmark count (0 = default)")
		inQueue = flag.Int("ingest-queue", 0, "group-commit ingest queue depth (0 = default 1024); full queue answers 429")
		inBatch = flag.Int("ingest-batch", 0, "max runs per ingest group-commit (0 = default 64)")
		inWait  = flag.Duration("ingest-maxwait", 0, "ingest batcher linger window (0 commits as soon as the queue drains)")
		timing  = flag.String("timing-log", "", "append per-request stage timings as CSV to this file")
	)
	flag.Parse()
	st, err := store.OpenRepository(*dir, *backend, *shards)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if *demo > 0 {
		if err := seedDemo(st, *demo, *seed); err != nil {
			log.Fatal(err)
		}
	}
	opts := server.Options{
		CacheSize:      *cache,
		IndexThreshold: *indexTh,
		Landmarks:      *marks,
		IngestQueue:    *inQueue,
		IngestBatch:    *inBatch,
		IngestMaxWait:  *inWait,
	}
	if *timing != "" {
		sink, err := newTimingLog(*timing)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		opts.OnRequestTiming = sink.record
	}
	handler := server.New(st, opts)
	if *preload {
		warmStart(st, handler)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("provserved: serving %s on %s", *dir, *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("provserved: draining connections")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("provserved: shutdown: %v", err)
	}
	// The listener is closed; drain the ingest queue so every accepted
	// import is committed before the process (and the store) go away.
	handler.Close()
}

// warmStart rebuilds the in-memory caches before the listener opens:
// every stored run is loaded (from its binary snapshot where one is
// fresh, with XML fallback and snapshot repair otherwise), snapshots
// are materialized for runs that lacked them, and the per-spec cohort
// matrices are built — so the first request after a restart is as
// fast as the thousandth before it. Failures only cost warmth, never
// availability.
func warmStart(st *store.Store, handler *server.Server) {
	t0 := time.Now()
	stats, err := st.PreloadAll()
	if err != nil {
		log.Printf("provserved: preload: %v", err)
	}
	var runs, fromSnap, fromXML int
	for _, ps := range stats {
		runs += ps.Runs
		fromSnap += ps.FromSnapshot
		fromXML += ps.FromXML
		if _, err := st.Snapshot(ps.Spec); err != nil {
			log.Printf("provserved: snapshot %s: %v", ps.Spec, err)
		}
	}
	if err := handler.Warm(); err != nil {
		log.Printf("provserved: cohort warm-up: %v", err)
	}
	log.Printf("provserved: warm start: %d specs, %d runs (%d from snapshots, %d re-parsed) in %s",
		len(stats), runs, fromSnap, fromXML, time.Since(t0).Round(time.Millisecond))
}

// seedDemo populates the repository with the protein annotation
// workflow and n runs under the spec name "demo", unless it already
// exists.
func seedDemo(st *store.Store, n int, seed int64) error {
	if _, err := st.LoadSpec("demo"); err == nil {
		return nil // already seeded
	}
	sp, err := gen.ProteinAnnotation()
	if err != nil {
		return err
	}
	if err := st.SaveSpec("demo", sp); err != nil {
		return err
	}
	// Runs must be built against the stored specification object.
	sp, err = st.LoadSpec("demo")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			return err
		}
		if err := st.SaveRun("demo", fmt.Sprintf("r%d", i), r); err != nil {
			return err
		}
	}
	// An evolved version of the demo workflow, lineage-linked so the
	// cross-version endpoints can be exercised out of the box.
	muts, err := gen.Mutate(sp, 2, rng)
	if err != nil {
		return err
	}
	if err := st.PutSpecVersion("demo", "demo-v2", muts[len(muts)-1].Spec); err != nil {
		return err
	}
	v2, err := st.LoadSpec("demo-v2")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(v2, gen.DefaultRunParams(), rng)
		if err != nil {
			return err
		}
		if err := st.SaveRun("demo-v2", fmt.Sprintf("v%d", i), r); err != nil {
			return err
		}
	}
	log.Printf("provserved: seeded demo spec (+demo-v2 lineage) with %d runs each", n)
	return nil
}
