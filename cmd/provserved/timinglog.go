package main

// CSV sink for the server's per-request stage timings (-timing-log).
// One row per completed request; the header is written only when the
// file starts empty, so appending across restarts keeps the file a
// single well-formed CSV.

import (
	"os"
	"sync"

	"repro/internal/server"
)

type timingLog struct {
	mu sync.Mutex
	f  *os.File
}

func newTimingLog(path string) (*timingLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(server.TimingCSVHeader() + "\n"); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &timingLog{f: f}, nil
}

// record is the server's OnRequestTiming hook: called concurrently,
// must not retain t past the call.
func (l *timingLog) record(t *server.RequestTiming) {
	row := t.CSVRow()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.WriteString(row + "\n")
}

func (l *timingLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
