package main

// First tests for the pdiff CLI: the one-shot two-file diff a user
// reaches for before standing up a repository, run in-process through
// the real entry point.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/wfxml"
)

func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var ob, eb bytes.Buffer
	stdout, stderr = &ob, &eb
	defer func() { stdout, stderr = os.Stdout, os.Stderr }()
	return run(args), ob.String(), eb.String()
}

// fixtures renders the PA catalog spec and two runs into a directory.
func fixtures(t *testing.T) (specPath, run1, run2 string) {
	t.Helper()
	dir := t.TempDir()
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, sp, "pa"); err != nil {
		t.Fatal(err)
	}
	specPath = filepath.Join(dir, "spec.xml")
	if err := os.WriteFile(specPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	paths := []*string{&run1, &run2}
	for i, p := range paths {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := wfxml.EncodeRun(&buf, r, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
		*p = filepath.Join(dir, fmt.Sprintf("r%d.xml", i))
		if err := os.WriteFile(*p, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return specPath, run1, run2
}

func TestDiffHappyPath(t *testing.T) {
	specPath, r1, r2 := fixtures(t)
	code, out, errOut := runCLI(t, "-spec", specPath, "-from", r1, "-to", r2)
	if code != 0 {
		t.Fatalf("code %d, err %q", code, errOut)
	}
	if !strings.Contains(out, "distance") {
		t.Fatalf("summary missing distance: %q", out)
	}
	// -script adds the edit script section on top of the summary.
	code, scripted, _ := runCLI(t, "-spec", specPath, "-from", r1, "-to", r2, "-script")
	if code != 0 || !strings.Contains(scripted, "edit script:") {
		t.Fatalf("-script output: code %d %q", code, scripted)
	}
	if len(scripted) <= len(out) {
		t.Fatal("-script printed nothing beyond the summary")
	}
	// Identical runs diff to distance 0.
	code, same, _ := runCLI(t, "-spec", specPath, "-from", r1, "-to", r1)
	if code != 0 || !strings.Contains(same, "distance") {
		t.Fatalf("self diff: code %d %q", code, same)
	}
	// -clusters prints the composite-module rollup at the given depth.
	code, rolled, errOut := runCLI(t, "-spec", specPath, "-from", r1, "-to", r2, "-clusters", "1")
	if code != 0 {
		t.Fatalf("-clusters: code %d err %q", code, errOut)
	}
	if len(rolled) <= len(out) {
		t.Fatal("-clusters printed nothing beyond the summary")
	}
}

// TestCrossVersionDiff drives -across with the same specification as
// both versions: the evolution mapping is the identity, so the whole
// distance is data-driven and none is spec-forced.
func TestCrossVersionDiff(t *testing.T) {
	specPath, r1, r2 := fixtures(t)
	code, out, errOut := runCLI(t, "-spec", specPath, "-from", r1, "-to", r2, "-across", specPath)
	if code != 0 {
		t.Fatalf("code %d, err %q", code, errOut)
	}
	for _, want := range []string{"cross-version", "data-driven", "spec-forced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cross diff output missing %q: %q", want, out)
		}
	}
	// A nonexistent evolved spec fails cleanly, naming the file.
	code, _, errOut = runCLI(t, "-spec", specPath, "-from", r1, "-to", r2, "-across", specPath+".nope")
	if code != 1 || !strings.Contains(errOut, "loading") {
		t.Fatalf("missing across spec: code %d err %q", code, errOut)
	}
}

func TestHTMLOutput(t *testing.T) {
	specPath, r1, r2 := fixtures(t)
	htmlPath := filepath.Join(t.TempDir(), "diff.html")
	code, out, errOut := runCLI(t, "-spec", specPath, "-from", r1, "-to", r2, "-html", htmlPath)
	if code != 0 {
		t.Fatalf("code %d, err %q", code, errOut)
	}
	if !strings.Contains(out, "wrote "+htmlPath) {
		t.Fatalf("no write confirmation: %q", out)
	}
	page, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(page, []byte("<html")) {
		t.Fatalf("not an HTML page: %.80s", page)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	specPath, r1, r2 := fixtures(t)
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"missing required flags", []string{"-spec", specPath}, 2, "Usage"},
		{"unknown flag", []string{"-bogus"}, 2, "flag provided but not defined"},
		{"bad cost model", []string{"-spec", specPath, "-from", r1, "-to", r2, "-cost", "bogus"}, 1, "cost"},
		{"metric-violating epsilon", []string{"-spec", specPath, "-from", r1, "-to", r2, "-cost", "power:2"}, 1, "power"},
		{"missing run file", []string{"-spec", specPath, "-from", specPath + ".nope", "-to", r2}, 1, "no such file"},
		{"spec as run", []string{"-spec", specPath, "-from", specPath, "-to", r2}, 1, "loading"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("code = %d, want %d (out %q err %q)", code, tc.wantCode, out, errOut)
			}
			if !strings.Contains(errOut, tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", errOut, tc.wantErr)
			}
		})
	}
}
