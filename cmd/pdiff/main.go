// Command pdiff computes the difference between two runs of the same
// SP-workflow specification:
//
//	pdiff -spec spec.xml -from run1.xml -to run2.xml [-cost unit|length|power:EPS]
//	      [-script] [-clusters DEPTH] [-html out.html] [-across spec2.xml]
//
// It prints the edit distance, and optionally the minimum-cost edit
// script, the composite-module change rollup, and a standalone HTML
// visualization.
//
// With -across, the two runs belong to different *versions* of the
// workflow: -from runs under -spec, -to runs under -across. pdiff
// computes the spec-evolution mapping between the versions, projects
// the source run into the new version's node space, and reports the
// cross-version distance split into data-driven change (the run diff
// of the projection) and spec-forced change (regions the evolution
// dropped or inserted).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/cost"
	"repro/internal/evolve"
	"repro/internal/spec"
	"repro/internal/view"
	"repro/internal/wfrun"
)

// stdout and stderr are swappable so the CLI tests can run the command
// in-process and read what a user would see.
var (
	stdout io.Writer = os.Stdout
	stderr io.Writer = os.Stderr
)

// exitErr unwinds to run's recover with an exit code; fatal raises it
// instead of calling os.Exit so tests get a return value.
type exitErr struct{ code int }

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole command as a function: parse flags, load the
// documents, print the diff, return the exit code.
func run(args []string) (code int) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case exitErr:
			code = r.code
		default:
			panic(r)
		}
	}()
	fs := flag.NewFlagSet("pdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath   = fs.String("spec", "", "specification XML file (required)")
		fromPath   = fs.String("from", "", "source run XML file (required)")
		toPath     = fs.String("to", "", "target run XML file (required)")
		costName   = fs.String("cost", "unit", "cost model: unit, length, or power:EPS")
		script     = fs.Bool("script", false, "print the minimum-cost edit script")
		clusters   = fs.Int("clusters", -1, "print the composite-module rollup at this depth")
		htmlOut    = fs.String("html", "", "write an HTML visualization to this file")
		acrossPath = fs.String("across", "", "evolved specification XML: -to is a run of this version")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specPath == "" || *fromPath == "" || *toPath == "" {
		fs.Usage()
		return 2
	}
	model, err := cli.ParseCost(*costName)
	if err != nil {
		fatal(err)
	}
	sp, err := cli.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	r1, err := cli.LoadRun(*fromPath, sp)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", *fromPath, err))
	}
	if *acrossPath != "" {
		crossDiff(sp, r1, *acrossPath, *toPath, model)
		return 0
	}
	r2, err := cli.LoadRun(*toPath, sp)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", *toPath, err))
	}
	d, err := view.New(r1, r2, model)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(stdout, d.Summary())
	if *script {
		fmt.Fprintln(stdout, "\nedit script:")
		fmt.Fprint(stdout, d.Script.String())
	}
	if *clusters >= 0 {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, d.ClusterReport(*clusters))
	}
	if *htmlOut != "" {
		page := d.HTML(fmt.Sprintf("pdiff: %s vs %s", *fromPath, *toPath))
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", *htmlOut)
	}
	return 0
}

// crossDiff handles -across: compare a run of one spec version with a
// run of an evolved version through the spec-evolution mapping.
func crossDiff(sp1 *spec.Spec, r1 *wfrun.Run, acrossPath, toPath string, model cost.Model) {
	sp2, err := cli.LoadSpec(acrossPath)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", acrossPath, err))
	}
	r2, err := cli.LoadRun(toPath, sp2)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", toPath, err))
	}
	m, err := evolve.SpecDiff(sp1, sp2, evolve.DefaultCosts())
	if err != nil {
		fatal(err)
	}
	res, err := evolve.CrossDiff(m, r1, r2, model)
	if err != nil {
		fatal(err)
	}
	st := m.Stats()
	fmt.Fprintf(stdout, "spec evolution: cost %g, %d modules survive, %d deleted, %d inserted\n",
		m.Cost, st.MappedModules, st.DeletedModules, st.InsertedModules)
	fmt.Fprintf(stdout, "cross-version distance: %g (%s cost)\n", res.Distance, model.Name())
	fmt.Fprintf(stdout, "  data-driven change (run diff of projection): %g\n", res.EngineDistance)
	fmt.Fprintf(stdout, "  spec-forced change: dropped %g (%d regions), inserted %g (%d regions)\n",
		res.Projection.DroppedCost, res.Projection.DroppedRegions,
		res.Projection.InsertedCost, res.Projection.InsertedRegions)
}

func fatal(err error) {
	fmt.Fprintln(stderr, "pdiff:", err)
	panic(exitErr{1})
}
