// Command pdiff computes the difference between two runs of the same
// SP-workflow specification:
//
//	pdiff -spec spec.xml -from run1.xml -to run2.xml [-cost unit|length|power:EPS]
//	      [-script] [-clusters DEPTH] [-html out.html]
//
// It prints the edit distance, and optionally the minimum-cost edit
// script, the composite-module change rollup, and a standalone HTML
// visualization.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/view"
)

func main() {
	var (
		specPath = flag.String("spec", "", "specification XML file (required)")
		fromPath = flag.String("from", "", "source run XML file (required)")
		toPath   = flag.String("to", "", "target run XML file (required)")
		costName = flag.String("cost", "unit", "cost model: unit, length, or power:EPS")
		script   = flag.Bool("script", false, "print the minimum-cost edit script")
		clusters = flag.Int("clusters", -1, "print the composite-module rollup at this depth")
		htmlOut  = flag.String("html", "", "write an HTML visualization to this file")
	)
	flag.Parse()
	if *specPath == "" || *fromPath == "" || *toPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	model, err := cli.ParseCost(*costName)
	if err != nil {
		fatal(err)
	}
	sp, err := cli.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	r1, err := cli.LoadRun(*fromPath, sp)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", *fromPath, err))
	}
	r2, err := cli.LoadRun(*toPath, sp)
	if err != nil {
		fatal(fmt.Errorf("loading %s: %w", *toPath, err))
	}
	d, err := view.New(r1, r2, model)
	if err != nil {
		fatal(err)
	}
	fmt.Print(d.Summary())
	if *script {
		fmt.Println("\nedit script:")
		fmt.Print(d.Script.String())
	}
	if *clusters >= 0 {
		fmt.Println()
		fmt.Print(d.ClusterReport(*clusters))
	}
	if *htmlOut != "" {
		page := d.HTML(fmt.Sprintf("pdiff: %s vs %s", *fromPath, *toPath))
		if err := os.WriteFile(*htmlOut, []byte(page), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *htmlOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdiff:", err)
	os.Exit(1)
}
