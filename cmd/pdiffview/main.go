// Command pdiffview serves the PDiffView visualization over HTTP:
//
//	pdiffview -spec spec.xml -from run1.xml -to run2.xml [-addr :8080] [-cost unit]
//
// GET /            the full diff page (runs side by side, script, rollup)
// GET /source.svg  the source run graph with deleted paths in red
// GET /target.svg  the target run graph with inserted paths in green
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/cli"
	"repro/internal/view"
)

func main() {
	var (
		specPath = flag.String("spec", "", "specification XML file (required)")
		fromPath = flag.String("from", "", "source run XML file (required)")
		toPath   = flag.String("to", "", "target run XML file (required)")
		costName = flag.String("cost", "unit", "cost model: unit, length, or power:EPS")
		addr     = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *specPath == "" || *fromPath == "" || *toPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	model, err := cli.ParseCost(*costName)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := cli.LoadSpec(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	r1, err := cli.LoadRun(*fromPath, sp)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := cli.LoadRun(*toPath, sp)
	if err != nil {
		log.Fatal(err)
	}
	d, err := view.New(r1, r2, model)
	if err != nil {
		log.Fatal(err)
	}
	http.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, d.HTML("PDiffView"))
	})
	http.HandleFunc("/source.svg", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, view.RenderSVG(d.R1, d.EdgeStatus1()))
	})
	http.HandleFunc("/target.svg", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, view.RenderSVG(d.R2, d.EdgeStatus2()))
	})
	log.Printf("pdiffview: serving on %s (distance %g)", *addr, d.Result.Distance)
	log.Fatal(http.ListenAndServe(*addr, nil))
}
