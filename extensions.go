package provdiff

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/metricindex"
	"repro/internal/params"
	"repro/internal/sptree"
	"repro/internal/store"
	"repro/internal/view"
	"repro/internal/wfrun"
)

// Multi-run analysis (the paper's motivating workflow: compare many
// executions of an experiment).
type (
	// DistanceMatrixResult is a symmetric pairwise distance matrix
	// over a run cohort with medoid/outlier/clustering helpers.
	DistanceMatrixResult = analysis.Matrix
	// Dendrogram is a UPGMA hierarchical clustering tree.
	Dendrogram = analysis.Dendrogram
	// CohortMatrix is a shared distance matrix maintained
	// incrementally: adding a run differences only the new row, with
	// per-shard engines (and their W_TG memos) reused across imports.
	CohortMatrix = analysis.CohortMatrix
)

// DistanceMatrix computes all pairwise edit distances of a cohort.
func DistanceMatrix(runs []*Run, names []string, m CostModel) (*DistanceMatrixResult, error) {
	return analysis.DistanceMatrix(runs, names, m)
}

// NewCohortMatrix returns an empty incrementally-updatable cohort
// matrix; workers caps the differencing fan-out (<= 0 for all cores).
func NewCohortMatrix(m CostModel, workers int) *CohortMatrix {
	return analysis.NewCohortMatrix(m, workers)
}

// Cohort analytics over a distance matrix (internal/cluster): which
// executions behave alike, which are anomalous, which resemble a
// given run.
type (
	// Clustering is a k-medoids (PAM) partition of a cohort.
	Clustering = cluster.Clustering
	// OutlierScore ranks one run by its knn-distance outlier score.
	OutlierScore = cluster.OutlierScore
	// Neighbor is one nearest-neighbor answer entry.
	Neighbor = cluster.Neighbor
)

// KMedoids partitions a cohort into k clusters by PAM over its
// distance matrix; deterministic for a fixed seed.
func KMedoids(d [][]float64, k int, seed int64) (*Clustering, error) {
	return cluster.KMedoids(d, k, seed)
}

// Outliers scores every cohort member by mean distance to its k
// nearest neighbors, most anomalous first.
func Outliers(d [][]float64, k int) ([]OutlierScore, error) { return cluster.Outliers(d, k) }

// NearestNeighbors returns the k cohort members closest to item i.
func NearestNeighbors(d [][]float64, i, k int) ([]Neighbor, error) {
	return cluster.Nearest(d, i, k)
}

// Metric-index cohort analytics (internal/metricindex +
// internal/cluster): sub-quadratic nearest-neighbor, outlier and
// clustering queries over large cohorts. The index keys runs by the
// verified edit-distance metric and prunes exact DP diffs with two
// lower bounds — landmark triangle-inequality gaps and a
// cost-model-scaled status-histogram L1 gap — so queries touch only
// the pairs the bounds cannot rule out, with answers byte-identical
// to the exhaustive ones for nearest/outliers.
type (
	// MetricIndex is an incrementally maintained vantage-point index
	// over a run cohort.
	MetricIndex = metricindex.Index
	// MetricIndexOptions tunes landmark count and differencing
	// fan-out.
	MetricIndexOptions = metricindex.Options
	// MetricCohort is an immutable snapshot of a MetricIndex, the
	// query substrate for the Indexed* analytics.
	MetricCohort = metricindex.Cohort
	// SampleOptions tunes SampledKMedoids (sample size, restarts).
	SampleOptions = cluster.SampleOptions
	// HybridCohort keeps a cohort dense below a size threshold and
	// index-backed above it, under the CohortMatrix maintenance
	// discipline.
	HybridCohort = analysis.HybridCohort
	// HybridCohortOptions tunes the representation switch.
	HybridCohortOptions = analysis.HybridOptions
)

// NewMetricIndex returns an empty metric index for the given cost
// model.
func NewMetricIndex(m CostModel, opts MetricIndexOptions) *MetricIndex {
	return metricindex.New(m, opts)
}

// NewHybridCohort returns an empty hybrid cohort for the given cost
// model; workers caps the differencing fan-out (<= 0 for all cores).
func NewHybridCohort(m CostModel, workers int, opts HybridCohortOptions) *HybridCohort {
	return analysis.NewHybridCohort(m, workers, opts)
}

// KMedoidsContext is KMedoids with cooperative cancellation: the SWAP
// loop polls ctx between medoid rows.
func KMedoidsContext(ctx context.Context, d [][]float64, k int, seed int64) (*Clustering, error) {
	return cluster.KMedoidsContext(ctx, d, k, seed)
}

// IndexedNearestNeighbors returns the k cohort members closest to
// item i, byte-identical to NearestNeighbors over the full matrix but
// diffing only pairs the index bounds cannot prune.
func IndexedNearestNeighbors(co *MetricCohort, i, k int) ([]Neighbor, error) {
	return cluster.IndexedNearest(co, i, k)
}

// IndexedOutliers scores every cohort member by mean distance to its
// k nearest neighbors without materializing the distance matrix;
// scores and order match Outliers byte-identically (MeanAll is 0).
func IndexedOutliers(co *MetricCohort, k int) ([]OutlierScore, error) {
	return cluster.IndexedOutliers(co, k)
}

// SampledKMedoids clusters a large cohort by PAM over a deterministic
// sample, then assigns the full cohort to the chosen medoids using
// the index bounds; deterministic for a fixed seed.
func SampledKMedoids(ctx context.Context, co *MetricCohort, k int, seed int64, opts SampleOptions) (*Clustering, error) {
	return cluster.SampledKMedoids(ctx, co, k, seed, opts)
}

// HistogramLowerBound returns the status-histogram lower bound on the
// edit distance of two runs of one specification — 0 when the cost
// model admits no label-free rate (e.g. Func models).
func HistogramLowerBound(m CostModel, r1, r2 *Run) (float64, error) {
	return metricindex.HistogramBound(m, r1, r2)
}

// Data and parameter differencing (Section I's data dimension).
type (
	// Annotations attach parameter settings to module instances and
	// data identifiers to edges of a run.
	Annotations = params.Annotations
	// DataReport highlights parameter/data differences over the
	// matched provenance.
	DataReport = params.Report
)

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations { return params.NewAnnotations() }

// CompactScript folds delete/insert pairs over the same terminals in
// an edit script into detected path replacements (Section III-C.1's
// post-processing).
func CompactScript(s *Script) []view.CompactOp { return view.CompactScript(s) }

// DataDiff highlights parameter and data differences on the nodes and
// edges aligned by a computed mapping.
func DataDiff(res *Result, a1, a2 *Annotations) *DataReport { return params.DataDiff(res, a1, a2) }

// DiffWithData computes a diff in which data is a factor in the
// matching: pairing two edges whose data identifiers disagree adds
// weight to the mapping objective, steering the matching toward copies
// that carry the same data. The returned Result's Distance is the
// penalized objective.
func DiffWithData(r1, r2 *Run, m CostModel, a1, a2 *Annotations, weight float64) (*Result, error) {
	return core.Diff(r1, r2, m, core.WithLeafPenalty(params.LeafPenalty(a1, a2, weight)))
}

// RandomDecider adapts RunParams into a Decider for custom execution
// loops.
func RandomDecider(p RunParams, rng *rand.Rand) Decider {
	return gen.NewDecider(p, rng)
}

// TreeNode re-exports the annotated SP-tree node type for advanced
// callers (custom deciders inspect specification nodes).
type TreeNode = sptree.Node

// Tree node types.
const (
	NodeQ = sptree.Q
	NodeS = sptree.S
	NodeP = sptree.P
	NodeF = sptree.F
	NodeL = sptree.L
)

// Provenance repository (the prototype's store/import/export layer).

// Store is an on-disk repository of specifications and runs. Beyond
// save/load/diff/cohort it carries the snapshot layer (Preload,
// PreloadAll, Snapshot — cold starts decode binary frames instead of
// re-parsing XML) and streaming bulk I/O (ImportRuns, ImportDir,
// ExportSpec) with coalesced change notifications (OnRunsBulkChange).
type Store = store.Store

// OpenStore opens (creating if needed) a provenance repository.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

type (
	// RunData is one run of a bulk import: name + raw XML document.
	RunData = store.RunData
	// ImportStats summarizes a bulk import.
	ImportStats = store.ImportStats
	// SnapshotStats reports what a Store.Snapshot pass did.
	SnapshotStats = store.SnapshotStats
	// PreloadStats reports where a Store.Preload got its runs from.
	PreloadStats = store.PreloadStats
)

// ReadRunTar collects bulk-import run documents from a tar stream
// (the format ExportSpec writes and the runs:bulk endpoint accepts),
// with per-run and total size limits.
func ReadRunTar(r io.Reader, maxRun, maxTotal int64) ([]RunData, error) {
	return store.ReadRunTar(r, maxRun, maxTotal)
}

// Tamper-evident provenance ledger (internal/ledger + the store's
// snapshot layer): every group-committed batch of runs becomes one
// Merkle tree over the content hashes of its codec frames, chained
// onto the spec's previous ledger head. Store.RunProof produces the
// inclusion proof of a run's current frame, Store.LedgerHeads the
// per-spec heads plus the repository root, and Store.VerifyLedger the
// full re-hash of live frames against the attested history.
type (
	// RunProof is a self-contained Merkle inclusion proof: leaf hash,
	// L/R sibling path, batch root, and the chain to the ledger head.
	RunProof = store.RunProof
	// SpecLedger summarizes one spec's ledger (head hash, batch count).
	SpecLedger = store.SpecLedger
	// LedgerVerifyReport is the outcome of a Store.VerifyLedger pass.
	LedgerVerifyReport = store.VerifyReport
	// LedgerVerifyIssue is one divergence a verify pass found.
	LedgerVerifyIssue = store.VerifyIssue
)

// VerifyRunProof replays a RunProof client-side — leaf up the sibling
// path to the batch root, then along the chain — returning the ledger
// head it implies. Compare it against the spec's published head.
func VerifyRunProof(p *RunProof) (string, error) { return store.VerifyProof(p) }

// FrameContentHash is the canonical SHA-256 content address of an
// encoded codec frame (run, spec or spec-mapping) — the identity the
// ledger attests.
func FrameContentHash(frame []byte) [32]byte { return codec.ContentHash(frame) }

// Workflow evolution (internal/evolve): specs change between versions
// — modules renamed, inserted, deleted; series edges split; parallel
// branches duplicated — and runs collected under different versions
// must still be comparable. The spec-evolution subsystem computes an
// edit mapping between two specification versions and projects runs
// through it so the run-diff engine, cohort matrices and clustering
// work across versions. The Store integrates lineage natively:
// PutSpecVersion registers a version (persisting its mapping as a
// snapshot frame), Lineage walks the version chain, SpecMapping
// composes per-step mappings, and CrossDiff compares stored runs
// across versions.
type (
	// SpecMapping aligns the surviving nodes of one specification
	// version with their counterparts in another.
	SpecMapping = evolve.SpecMapping
	// EvolveCosts prices spec-level edits (module rename,
	// insert/delete, series/parallel restructure).
	EvolveCosts = evolve.Costs
	// SpecMappingStats summarizes a mapping (mapped, renamed,
	// inserted, deleted modules).
	SpecMappingStats = evolve.MappingStats
	// CrossResult is a cross-version run comparison: projection +
	// run-diff distance with the spec-forced change priced apart.
	CrossResult = evolve.CrossResult
	// RunProjection prices what a mapping could not carry across.
	RunProjection = evolve.Projection
	// SpecMutation is one applied spec-evolution step (see MutateSpec).
	SpecMutation = gen.Mutation
)

// DefaultEvolveCosts is the spec-edit cost model the store and service
// use.
func DefaultEvolveCosts() EvolveCosts { return evolve.DefaultCosts() }

// SpecEvolve computes the minimum-cost edit mapping between two
// specification versions.
func SpecEvolve(a, b *Spec, c EvolveCosts) (*SpecMapping, error) {
	return evolve.SpecDiff(a, b, c)
}

// IdentitySpecMapping is the total self-mapping of a specification,
// under which CrossDiff degenerates to the plain run diff.
func IdentitySpecMapping(sp *Spec) *SpecMapping { return evolve.Identity(sp) }

// ComposeSpecMappings chains mappings A→B and B→C into A→C.
func ComposeSpecMappings(m1, m2 *SpecMapping) (*SpecMapping, error) {
	return evolve.Compose(m1, m2)
}

// ProjectRun pushes a run of the mapping's source version into the
// target version's node space, producing a valid run of the target;
// the Projection prices the regions the mapping could not carry.
func ProjectRun(m *SpecMapping, r *Run, runCost CostModel) (*Run, *RunProjection, error) {
	return evolve.ProjectRun(m, r, runCost)
}

// CrossDiff compares a run of one specification version with a run of
// another under a spec mapping: projection plus ordinary run diff,
// with spec-forced change (dropped/inserted regions) priced apart
// from data-driven change.
func CrossDiff(m *SpecMapping, r1, r2 *Run, runCost CostModel) (*CrossResult, error) {
	return evolve.CrossDiff(m, r1, r2, runCost)
}

// MutateSpec applies n random spec-evolution mutations (subdivide a
// series edge, add a parallel module, duplicate a parallel branch) —
// the workload generator for evolution scenarios. The last element
// carries the final specification.
func MutateSpec(sp *Spec, n int, rng *rand.Rand) ([]*SpecMutation, error) {
	return gen.Mutate(sp, n, rng)
}

// EncodeSpecMappingBinary serializes a spec mapping as a versioned,
// checksummed snapshot frame (the store's lineage.bin format).
func EncodeSpecMappingBinary(m *SpecMapping) ([]byte, error) {
	return codec.EncodeSpecMapping(m)
}

// DecodeSpecMappingBinary rebuilds (and revalidates) a spec mapping
// frame against the two specification versions it aligns.
func DecodeSpecMappingBinary(data []byte, a, b *Spec) (*SpecMapping, error) {
	return codec.DecodeSpecMapping(data, a, b)
}

// Live (still-executing) runs: internal/wfrun's incremental derivation
// plus the store's event-log persistence. A LiveRun consumes node-
// status events one at a time, re-deriving only the affected top-level
// component of the specification tree; Complete assembles the full
// run, byte-stable under XML round trips. The Store counterparts
// (AppendLiveEvents, LiveStatusOf, ListLiveRuns, CompleteLiveRun,
// AbandonLiveRun) persist the event stream and promote finished runs
// through the group-commit import path.
type (
	// LiveEvent is one node-status event: a run edge appearing, named
	// by endpoint labels with optional explicit specification refs.
	LiveEvent = wfrun.Event
	// LiveRun incrementally derives a run from a stream of events.
	LiveRun = wfrun.Live
	// LiveRunStatus snapshots a store-managed in-flight run.
	LiveRunStatus = store.LiveStatus
)

// NewLiveRun starts incremental derivation of a run of sp.
func NewLiveRun(sp *Spec) *LiveRun { return wfrun.NewLive(sp) }

// RunEvents replays a finished run as the event stream that would
// rebuild it — the bridge from stored runs to live-ingest testing and
// load generation.
func RunEvents(r *Run) []LiveEvent { return wfrun.Events(r) }

// Pluggable storage backends (internal/store's Backend seam): the
// repository's whole persistence surface is a small blob interface, so
// the same store logic — snapshots, ledger, live journals, bulk I/O —
// runs over a local directory tree, an in-memory map, a
// content-addressed object layout, or a consistent-hash-sharded
// combination of those. Every implementation is held to one contract
// by the conformance suite in internal/store/conformance.
type (
	// StorageBackend is the store's persistence surface: atomic
	// WriteFile, durable Append, not-exist errors satisfying
	// errors.Is(err, fs.ErrNotExist), sorted listings.
	StorageBackend = store.Backend
	// StorageEntry is one name in a backend "directory" listing.
	StorageEntry = store.Entry
	// StorageBlobInfo describes a stored blob (size, mod time).
	StorageBlobInfo = store.BlobInfo
	// StorageShardStats is one shard's placement count and operation
	// counters, as served by /v1/stats and /v1/metrics.
	StorageShardStats = store.ShardStats
)

// NewFSBackend stores blobs as files under dir — the classic layout,
// byte-compatible with repositories created by earlier releases.
func NewFSBackend(dir string) (StorageBackend, error) { return store.NewFSBackend(dir) }

// NewMemoryBackend stores blobs in process memory — ephemeral
// repositories for tests and demos.
func NewMemoryBackend() StorageBackend { return store.NewMemoryBackend() }

// NewObjectBackend stores blobs as content-addressed chunks plus a
// JSON index under dir, the shape of an object-store bucket.
func NewObjectBackend(dir string) (StorageBackend, error) { return store.NewObjectBackend(dir) }

// NewStorageBackend constructs a backend by kind name ("fs", "memory"
// or "object").
func NewStorageBackend(kind, dir string) (StorageBackend, error) { return store.NewBackend(kind, dir) }

// NewShardedBackend routes specifications across child backends by
// consistent hashing; existing specs are discovered and pinned to the
// shard that holds them.
func NewShardedBackend(shards ...StorageBackend) (StorageBackend, error) {
	return store.NewShardedBackend(shards...)
}

// OpenStoreBackend opens a repository over any StorageBackend.
func OpenStoreBackend(be StorageBackend) *Store { return store.OpenBackend(be) }

// OpenStoreSharded opens a repository sharded across child backends.
func OpenStoreSharded(shards ...StorageBackend) (*Store, error) {
	return store.OpenSharded(shards...)
}

// OpenRepository is the CLI-facing constructor: dir over the named
// backend kind, sharded across n child backends under
// dir/shard-0..shard-(n-1) when n > 1.
func OpenRepository(dir, kind string, shards int) (*Store, error) {
	return store.OpenRepository(dir, kind, shards)
}
