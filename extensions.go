package provdiff

import (
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/params"
	"repro/internal/sptree"
	"repro/internal/store"
	"repro/internal/view"
)

// Multi-run analysis (the paper's motivating workflow: compare many
// executions of an experiment).
type (
	// DistanceMatrixResult is a symmetric pairwise distance matrix
	// over a run cohort with medoid/outlier/clustering helpers.
	DistanceMatrixResult = analysis.Matrix
	// Dendrogram is a UPGMA hierarchical clustering tree.
	Dendrogram = analysis.Dendrogram
	// CohortMatrix is a shared distance matrix maintained
	// incrementally: adding a run differences only the new row, with
	// per-shard engines (and their W_TG memos) reused across imports.
	CohortMatrix = analysis.CohortMatrix
)

// DistanceMatrix computes all pairwise edit distances of a cohort.
func DistanceMatrix(runs []*Run, names []string, m CostModel) (*DistanceMatrixResult, error) {
	return analysis.DistanceMatrix(runs, names, m)
}

// NewCohortMatrix returns an empty incrementally-updatable cohort
// matrix; workers caps the differencing fan-out (<= 0 for all cores).
func NewCohortMatrix(m CostModel, workers int) *CohortMatrix {
	return analysis.NewCohortMatrix(m, workers)
}

// Cohort analytics over a distance matrix (internal/cluster): which
// executions behave alike, which are anomalous, which resemble a
// given run.
type (
	// Clustering is a k-medoids (PAM) partition of a cohort.
	Clustering = cluster.Clustering
	// OutlierScore ranks one run by its knn-distance outlier score.
	OutlierScore = cluster.OutlierScore
	// Neighbor is one nearest-neighbor answer entry.
	Neighbor = cluster.Neighbor
)

// KMedoids partitions a cohort into k clusters by PAM over its
// distance matrix; deterministic for a fixed seed.
func KMedoids(d [][]float64, k int, seed int64) (*Clustering, error) {
	return cluster.KMedoids(d, k, seed)
}

// Outliers scores every cohort member by mean distance to its k
// nearest neighbors, most anomalous first.
func Outliers(d [][]float64, k int) ([]OutlierScore, error) { return cluster.Outliers(d, k) }

// NearestNeighbors returns the k cohort members closest to item i.
func NearestNeighbors(d [][]float64, i, k int) ([]Neighbor, error) {
	return cluster.Nearest(d, i, k)
}

// Data and parameter differencing (Section I's data dimension).
type (
	// Annotations attach parameter settings to module instances and
	// data identifiers to edges of a run.
	Annotations = params.Annotations
	// DataReport highlights parameter/data differences over the
	// matched provenance.
	DataReport = params.Report
)

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations { return params.NewAnnotations() }

// CompactScript folds delete/insert pairs over the same terminals in
// an edit script into detected path replacements (Section III-C.1's
// post-processing).
func CompactScript(s *Script) []view.CompactOp { return view.CompactScript(s) }

// DataDiff highlights parameter and data differences on the nodes and
// edges aligned by a computed mapping.
func DataDiff(res *Result, a1, a2 *Annotations) *DataReport { return params.DataDiff(res, a1, a2) }

// DiffWithData computes a diff in which data is a factor in the
// matching: pairing two edges whose data identifiers disagree adds
// weight to the mapping objective, steering the matching toward copies
// that carry the same data. The returned Result's Distance is the
// penalized objective.
func DiffWithData(r1, r2 *Run, m CostModel, a1, a2 *Annotations, weight float64) (*Result, error) {
	return core.Diff(r1, r2, m, core.WithLeafPenalty(params.LeafPenalty(a1, a2, weight)))
}

// RandomDecider adapts RunParams into a Decider for custom execution
// loops.
func RandomDecider(p RunParams, rng *rand.Rand) Decider {
	return gen.NewDecider(p, rng)
}

// TreeNode re-exports the annotated SP-tree node type for advanced
// callers (custom deciders inspect specification nodes).
type TreeNode = sptree.Node

// Tree node types.
const (
	NodeQ = sptree.Q
	NodeS = sptree.S
	NodeP = sptree.P
	NodeF = sptree.F
	NodeL = sptree.L
)

// Provenance repository (the prototype's store/import/export layer).

// Store is an on-disk repository of specifications and runs. Beyond
// save/load/diff/cohort it carries the snapshot layer (Preload,
// PreloadAll, Snapshot — cold starts decode binary frames instead of
// re-parsing XML) and streaming bulk I/O (ImportRuns, ImportDir,
// ExportSpec) with coalesced change notifications (OnRunsBulkChange).
type Store = store.Store

// OpenStore opens (creating if needed) a provenance repository.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

type (
	// RunData is one run of a bulk import: name + raw XML document.
	RunData = store.RunData
	// ImportStats summarizes a bulk import.
	ImportStats = store.ImportStats
	// SnapshotStats reports what a Store.Snapshot pass did.
	SnapshotStats = store.SnapshotStats
	// PreloadStats reports where a Store.Preload got its runs from.
	PreloadStats = store.PreloadStats
)

// ReadRunTar collects bulk-import run documents from a tar stream
// (the format ExportSpec writes and the runs:bulk endpoint accepts),
// with per-run and total size limits.
func ReadRunTar(r io.Reader, maxRun, maxTotal int64) ([]RunData, error) {
	return store.ReadRunTar(r, maxRun, maxTotal)
}
